package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"aitf"
	"aitf/internal/scenario"
)

// TestAllDriversRegistered pins the experiment registry to EXPERIMENTS.md.
func TestAllDriversRegistered(t *testing.T) {
	drivers, ids := All()
	want := []string{"E1", "E13", "E15", "E16", "E17", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], id)
		}
		if drivers[id] == nil {
			t.Fatalf("driver %s missing", id)
		}
	}
}

func TestResultRender(t *testing.T) {
	r := E1Figure1()
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{"E1", "Figure-1 scenarios", "timeline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

// TestE2Shape asserts the §IV-A.1 reproduction: measured r grows with n
// and shrinks with T, staying within a small constant of the analytic
// bound.
func TestE2Shape(t *testing.T) {
	td, tr := 50*time.Millisecond, 50*time.Millisecond
	r1 := E2Run(1, time.Minute, td, tr, aitf.VictimDriven)
	r3 := E2Run(3, time.Minute, td, tr, aitf.VictimDriven)
	if r3 <= r1 {
		t.Fatalf("r not increasing in n: r(1)=%v r(3)=%v", r1, r3)
	}
	rShort := E2Run(2, 30*time.Second, td, tr, aitf.VictimDriven)
	rLong := E2Run(2, 2*time.Minute, td, tr, aitf.VictimDriven)
	if rLong >= rShort {
		t.Fatalf("r not decreasing in T: r(30s)=%v r(120s)=%v", rShort, rLong)
	}
	// Within 3x of the analytic value (the paper's is a bound).
	analytic := aitf.BandwidthReduction(1, td, tr, time.Minute)
	if r1 > 3*analytic || r1 < analytic/3 {
		t.Fatalf("measured r(1)=%v too far from analytic %v", r1, analytic)
	}
}

// TestE8Shape asserts the §V comparison: AITF reaches relief, pushback
// leaks more and recruits more routers as the chain deepens.
func TestE8Shape(t *testing.T) {
	horizon := 20 * time.Second
	ar, as, _, aleak := runAITFChain(3, horizon)
	pr, ps, _, pleak := runPushbackChain(3, horizon)
	if ar < 0 {
		t.Fatal("AITF never reached relief")
	}
	if pr >= 0 && pr <= ar {
		t.Fatalf("pushback relief (%d) not slower than AITF (%d)", pr, ar)
	}
	if pleak <= aleak*2 {
		t.Fatalf("pushback leak %v should far exceed AITF leak %v", pleak, aleak)
	}
	if as > 2 {
		t.Fatalf("AITF holds state on %d routers, want ≤2", as)
	}
	if ps < 2 {
		t.Fatalf("pushback recruited %d routers, want ≥2", ps)
	}
	// Depth scaling: pushback state grows with depth, AITF's does not.
	_, as5, _, _ := runAITFChain(5, horizon)
	_, ps5, _, _ := runPushbackChain(5, horizon)
	if as5 != as {
		t.Fatalf("AITF state depth-dependent: %d vs %d", as, as5)
	}
	if ps5 <= ps {
		t.Fatalf("pushback state not growing with depth: %d vs %d", ps, ps5)
	}
}

// TestE7NoForgedFilters asserts the security experiment's invariant.
func TestE7NoForgedFilters(t *testing.T) {
	res := E7HandshakeSecurity()
	tbl := res.Tables[0]
	for i, row := range tbl.Rows {
		if i == len(tbl.Rows)-1 {
			// Control row: the genuine request must succeed.
			if row[1] == "0" {
				t.Fatal("control produced no filter")
			}
			if row[4] != "true" {
				t.Fatal("control flow not blocked")
			}
			continue
		}
		if row[1] != "0" {
			t.Fatalf("vector %q created filters: %v", row[0], row)
		}
		if row[4] != "false" {
			t.Fatalf("vector %q blocked the legit flow", row[0])
		}
	}
}

// TestE9Bound asserts processed requests never exceed the contract.
func TestE9Bound(t *testing.T) {
	res := E9ContractPolicing()
	tbl := res.Tables[0]
	for _, row := range tbl.Rows {
		// columns: offered, received, dropped, processed, bound, filters
		var processed, bound float64
		if _, err := sscan(row[3], &processed); err != nil {
			t.Fatalf("parse %q: %v", row[3], err)
		}
		if _, err := sscan(row[4], &bound); err != nil {
			t.Fatalf("parse %q: %v", row[4], err)
		}
		if processed > bound {
			t.Fatalf("processed %v exceeds bound %v", processed, bound)
		}
		if row[5] != "0" {
			t.Fatalf("fabricated requests created filters: %v", row)
		}
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

// TestE3Crossover asserts the protection boundary of §IV-A.2: the
// silenced fraction at or below Nv materially exceeds the fraction at
// 2×Nv.
func TestE3Crossover(t *testing.T) {
	res := E3ProtectedFlows()
	tbl := res.Tables[0]
	var atNv, at2Nv float64
	for _, row := range tbl.Rows {
		var ratio, pct float64
		if _, err := fmt.Sscan(row[1], &ratio); err != nil {
			t.Fatalf("parse ratio %q: %v", row[1], err)
		}
		if _, err := fmt.Sscan(row[4], &pct); err != nil {
			t.Fatalf("parse pct %q: %v", row[4], err)
		}
		switch ratio {
		case 1:
			atNv = pct
		case 2:
			at2Nv = pct
		}
	}
	if atNv < 90 {
		t.Fatalf("silenced%% at Nv = %v, want ≥90", atNv)
	}
	if at2Nv >= atNv-15 {
		t.Fatalf("no degradation beyond Nv: atNv=%v at2Nv=%v", atNv, at2Nv)
	}
}

// TestE4FilterPeaksTrackTtmp asserts nv ≈ R1·Ttmp for well-provisioned
// Ttmp values (rows 2 and 3; row 1 is the deliberate misprovisioning
// ablation).
func TestE4FilterPeaksTrackTtmp(t *testing.T) {
	res := E4VictimGatewayResources()
	tbl := res.Tables[0]
	for i, row := range tbl.Rows {
		if i == 0 {
			continue // Ttmp < handshake: documented fallback regime
		}
		var nv, peak float64
		if _, err := fmt.Sscan(row[1], &nv); err != nil {
			t.Fatalf("parse %q: %v", row[1], err)
		}
		if _, err := fmt.Sscan(row[2], &peak); err != nil {
			t.Fatalf("parse %q: %v", row[2], err)
		}
		if peak > nv*1.5+4 {
			t.Fatalf("peak filters %v far above analytic nv %v (row %v)", peak, nv, row)
		}
	}
	// Shadows must peak at exactly mv.
	for _, row := range tbl.Rows {
		if row[3] != row[4] {
			t.Fatalf("shadow peak %s != analytic mv %s", row[4], row[3])
		}
	}
}

// TestE5StopOrderCap asserts the per-client R2 cap of §IV-C/D.
func TestE5StopOrderCap(t *testing.T) {
	res := E5AttackerGatewayResources()
	tbl := res.Tables[0]
	for _, row := range tbl.Rows {
		var na, held float64
		if _, err := fmt.Sscan(row[1], &na); err != nil {
			t.Fatalf("parse %q: %v", row[1], err)
		}
		if _, err := fmt.Sscan(row[2], &held); err != nil {
			t.Fatalf("parse %q: %v", row[2], err)
		}
		if held > na+2 { // +burst slack
			t.Fatalf("client holds %v stop orders, cap na=%v", held, na)
		}
	}
}

// TestE6ShadowOffLeaksMost asserts the ablation ordering.
func TestE6ShadowOffLeaksMost(t *testing.T) {
	res := E6OnOffAblation()
	tbl := res.Tables[0]
	leak := map[string]float64{}
	for _, row := range tbl.Rows {
		var v float64
		if _, err := fmt.Sscan(row[1], &v); err != nil {
			t.Fatalf("parse %q: %v", row[1], err)
		}
		leak[row[0]] = v
	}
	if leak["shadow-off"] <= 2*leak["victim-driven"] {
		t.Fatalf("shadow-off leak %v not much above victim-driven %v", leak["shadow-off"], leak["victim-driven"])
	}
	if leak["gateway-auto"] > leak["victim-driven"] {
		t.Fatalf("gateway-auto leak %v exceeds victim-driven %v", leak["gateway-auto"], leak["victim-driven"])
	}
}

// TestE2DriverRuns smoke-runs the full E2 driver (table generation).
func TestE2DriverRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full E2 sweep in -short mode")
	}
	res := E2EffectiveBandwidth()
	if len(res.Tables) != 2 {
		t.Fatalf("E2 produced %d tables", len(res.Tables))
	}
	if len(res.Tables[0].Rows) != 4 || len(res.Tables[1].Rows) != 3 {
		t.Fatal("E2 sweep sizes wrong")
	}
}

// TestE8DriverRuns smoke-runs the full E8 driver.
func TestE8DriverRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full E8 sweep in -short mode")
	}
	res := E8AITFvsPushback()
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 6 {
		t.Fatalf("E8 shape wrong: %+v", res.Tables)
	}
}

// TestE13DetectionLatency: the detection-latency experiment measures a
// non-zero emergent Td for the sketch detectors, every configuration
// ends with the victim relieved, and real detection costs more
// delivered attack bytes than the Td=0 oracle.
func TestE13DetectionLatency(t *testing.T) {
	res := E13DetectionLatency()
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 4 {
		t.Fatalf("table shape: %+v", res.Tables)
	}
	rows := map[string][]string{}
	for _, r := range res.Tables[0].Rows {
		rows[r[0]] = r
	}
	for _, sketch := range []string{"sketch host", "sketch gateway"} {
		r, ok := rows[sketch]
		if !ok {
			t.Fatalf("missing row %q", sketch)
		}
		if r[1] == "never" || r[1] == "0s" {
			t.Fatalf("%s: measured Td = %q, want emergent non-zero", sketch, r[1])
		}
	}
	for name, r := range rows {
		if r[3] != "0 B/s" {
			t.Fatalf("%s: victim not relieved by run end: %v", name, r)
		}
	}
}

// TestE15AllocSweep pins the collateral-contrast cells: both policies
// aggregate under pressure, and the allocator delivers strictly more
// legit bytes at equal-or-better attack suppression with strictly
// lower covered-address collateral.
func TestE15AllocSweep(t *testing.T) {
	cells := AllocSweep()
	if len(cells) != 2 || cells[0].Policy != "fixed24" || cells[1].Policy != "alloc" {
		t.Fatalf("sweep shape: %+v", cells)
	}
	fixed, alloc := cells[0], cells[1]
	if fixed.Aggregations == 0 || alloc.Aggregations == 0 {
		t.Fatalf("pressure did not force aggregation: %+v", cells)
	}
	if alloc.LegitBytes <= fixed.LegitBytes {
		t.Fatalf("allocator delivered %d legit B vs fixed %d — no collateral win",
			alloc.LegitBytes, fixed.LegitBytes)
	}
	if alloc.AttackBytes > fixed.AttackBytes {
		t.Fatalf("allocator let through %d attack B vs fixed %d",
			alloc.AttackBytes, fixed.AttackBytes)
	}
	if alloc.CollateralAddrs >= fixed.CollateralAddrs {
		t.Fatalf("allocator covered-addr collateral %d not below fixed %d",
			alloc.CollateralAddrs, fixed.CollateralAddrs)
	}
	if alloc.CollateralBytes >= fixed.CollateralBytes {
		t.Fatalf("allocator estimated collateral %d B not below fixed %d B",
			alloc.CollateralBytes, fixed.CollateralBytes)
	}
}

// TestE16ResilienceHoldsInvariants: every operating point in the
// hostile-network sweep — loss with and without retransmission, and
// the crash/restore rows — must hold all protocol invariants, and the
// retransmission cells must actually repair injected losses.
func TestE16ResilienceHoldsInvariants(t *testing.T) {
	r := E16Resilience()
	if r.ID != "E16" || len(r.Tables) != 2 {
		t.Fatalf("shape: id=%s tables=%d", r.ID, len(r.Tables))
	}
	var out strings.Builder
	r.Render(&out)
	s := out.String()
	if strings.Contains(s, "FAIL") {
		t.Fatalf("render contains FAIL:\n%s", s)
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "violations") && !strings.Contains(n, "0 violations") {
			t.Fatalf("violations in sweep: %s", n)
		}
	}
}

// TestE17ClusterCells exercises E17's cell runner on its extreme
// deployments without paying for the full sweep: a replicated cluster
// kill must lose nothing and keep suppression within the 5% acceptance
// bound of the no-crash cluster, independent replicas must lose
// filters somewhere, and every cell must hold all invariants.
func TestE17ClusterCells(t *testing.T) {
	clu := func(replicate, kill bool) scenario.ClusterSpec {
		return scenario.ClusterSpec{Replicas: 3, MergeMs: 250,
			Replicate: replicate, KillReplica: kill}
	}
	repl := runClusterCell("replicated + kill", clu(true, true))
	noCrash := runClusterCell("no crash", clu(true, false))
	indep := runClusterCell("independent + kill", clu(false, true))
	for _, cell := range []ClusterCell{repl, noCrash, indep} {
		if cell.Violations != 0 {
			t.Fatalf("cell %q violated invariants: %+v", cell.Mode, cell)
		}
	}
	if repl.Failovers == 0 || indep.Failovers == 0 {
		t.Fatalf("kills never landed: repl=%d indep=%d", repl.Failovers, indep.Failovers)
	}
	if repl.FiltersLost != 0 {
		t.Fatalf("replicated failover lost %d filters", repl.FiltersLost)
	}
	if indep.FiltersLost == 0 {
		t.Fatal("independent replicas lost nothing — the contrast cell is dead")
	}
	if noCrash.AttackSuppressed > 0 {
		drift := float64(noCrash.AttackSuppressed) - float64(repl.AttackSuppressed)
		if drift/float64(noCrash.AttackSuppressed) > 0.05 {
			t.Fatalf("suppression drift past 5%%: kill %d vs no-crash %d",
				repl.AttackSuppressed, noCrash.AttackSuppressed)
		}
	}
	if repl.MergeRounds == 0 || repl.MergeBytes == 0 {
		t.Fatalf("no replication traffic measured: %+v", repl)
	}
}
