// Package experiments regenerates every quantity in the paper's
// evaluation (Section IV and the Figure-1 walk-through), one driver per
// experiment. Each driver builds its workload on the simulator, runs
// it, and renders paper-vs-measured tables. The drivers are invoked by
// cmd/aitf-bench, by the top-level benchmark suite, and by tests.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"aitf/internal/metrics"
)

// Result is one experiment's output.
type Result struct {
	// ID is the experiment identifier used in EXPERIMENTS.md
	// (E1..E9).
	ID string
	// Title names the experiment after its paper location.
	Title string
	// Tables are the regenerated rows.
	Tables []*metrics.Table
	// Notes summarise the comparison against the paper's claims.
	Notes []string
}

// Render writes the result to w.
func (r Result) Render(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		t.Render(w)
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "%s\n", n)
	}
	fmt.Fprintln(w)
}

// Driver runs one experiment.
type Driver func() Result

// All returns every experiment driver keyed by ID, plus the sorted IDs.
func All() (map[string]Driver, []string) {
	m := map[string]Driver{
		"E1": E1Figure1,
		"E2": E2EffectiveBandwidth,
		"E3": E3ProtectedFlows,
		"E4": E4VictimGatewayResources,
		"E5": E5AttackerGatewayResources,
		"E6": E6OnOffAblation,
		"E7": E7HandshakeSecurity,
		"E8": E8AITFvsPushback,
		"E9":  E9ContractPolicing,
		"E13": E13DetectionLatency,
		"E15": E15CollateralAllocation,
		"E16": E16Resilience,
		"E17": E17ClusterFailover,
	}
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return m, ids
}
