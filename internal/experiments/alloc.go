package experiments

import (
	"time"

	"aitf"
	"aitf/internal/detect"
	"aitf/internal/metrics"
	"aitf/internal/sim"
)

// AllocCell is one aggregation policy's outcome on the collateral
// contrast workload: the §IV-B filter-pressure setup (twelve /28
// sibling attackers against a 4-slot victim table) with a legitimate
// low-rate sender inside the attackers' /24 but outside their /28. The
// fixed /24 fallback must cover the legit sender to relieve the table;
// the collateral-aware allocator can cover the attackers at /28 and
// spare it. The simulator runs in virtual time, so every counter is
// byte-exact and machine-independent.
type AllocCell struct {
	// Policy names the aggregation fallback: "fixed24" (the static
	// AggregationPrefixLen policy) or "alloc" (the legit-traffic-
	// weighted allocator with the /28../24 ladder).
	Policy string `json:"policy"`
	// Attackers is the flooding-site count (the legit sibling excluded).
	Attackers int `json:"attackers"`
	// FilterCapacity is the victim gateway's wire-speed slot budget.
	FilterCapacity int `json:"filter_capacity"`
	// AttackBytes is the attack traffic delivered to the victim — lower
	// is better suppression.
	AttackBytes uint64 `json:"attack_bytes"`
	// LegitBytes is the legitimate traffic delivered to the victim —
	// higher means less collateral damage.
	LegitBytes uint64 `json:"legit_bytes"`
	// Aggregations counts sibling groups coalesced under pressure.
	Aggregations uint64 `json:"aggregations"`
	// CollateralAddrs is the covered-address collateral the gateway
	// priced into its aggregates (covered minus replaced, summed).
	CollateralAddrs uint64 `json:"collateral_addrs"`
	// CollateralBytes is the estimated collateral legit bytes/window
	// priced into the installed aggregates (the fixed policy prices its
	// forced choice with the same estimator, so the cells compare).
	CollateralBytes uint64 `json:"collateral_bytes"`
}

// runAllocCell runs the contrast workload under one policy. A nil
// policy selects the fixed /24 fallback. Mirrors the deterministic
// setup of TestAllocatorSparesLegitSibling — sites 0..11 flood at 300
// kB/s, site 15 (outside the attackers' /28) sends at 15 kB/s, below
// the detection threshold — but defends the victim from its gateway,
// so the gateway's sketch engine both detects the attacks and feeds
// the allocator's measured per-pair collateral estimates.
func runAllocCell(policy *aitf.AllocationPolicy) AllocCell {
	const attackers, capacity = 12, 4
	opt := aitf.DefaultOptions()
	opt.FilterCapacity = capacity
	opt.GatewayDetect = detect.Config{
		ThresholdBps: 25_000,
		Window:       sim.Time(250 * time.Millisecond),
		Seed:         7,
	}
	cell := AllocCell{Policy: "fixed24", Attackers: attackers, FilterCapacity: capacity}
	if policy != nil {
		opt.Allocation = policy
		cell.Policy = "alloc"
	} else {
		opt.AggregationPrefixLen = 24
	}
	dep := aitf.DeployManyToOne(aitf.ManyToOneOptions{
		Options:              opt,
		Attackers:            16,
		GatewayDefendsVictim: true,
	})
	for i := 0; i < attackers; i++ {
		fl := dep.Flood(dep.Attackers[i], dep.Victim, 3e5)
		fl.SrcPort = uint16(5000 + i)
		fl.Launch()
	}
	legit := dep.Flood(dep.Attackers[15], dep.Victim, 15_000)
	legit.SrcPort = 6000
	legit.Launch()
	dep.Run(10 * time.Second)

	if m := dep.Victim.PerSource[dep.Attackers[15].Node().Addr()]; m != nil {
		cell.LegitBytes = m.Bytes
	}
	for i := 0; i < attackers; i++ {
		if m := dep.Victim.PerSource[dep.Attackers[i].Node().Addr()]; m != nil {
			cell.AttackBytes += m.Bytes
		}
	}
	st := dep.VictimGW.Stats()
	cell.Aggregations = st.Aggregations
	cell.CollateralAddrs = st.AggregateCollateral
	cell.CollateralBytes = st.AggregateCollateralBytes
	return cell
}

// AllocSweep runs the collateral contrast under both policies and
// returns the two cells, fixed /24 first. cmd/aitf-bench embeds the
// cells in BENCH_dataplane.json and gates them under -regress; the
// simulator's determinism makes the gate byte-exact.
func AllocSweep() []AllocCell {
	return []AllocCell{
		runAllocCell(nil),
		runAllocCell(&aitf.AllocationPolicy{PrefixLens: []uint8{28, 26, 24}}),
	}
}

// E15CollateralAllocation regenerates the collateral-aware allocation
// contrast: under identical table pressure, the legit-traffic-weighted
// allocator must deliver strictly more legitimate bytes than the fixed
// /24 fallback at equal-or-better attack suppression.
func E15CollateralAllocation() Result {
	res := Result{ID: "E15", Title: "collateral-aware filter allocation under table pressure"}
	cells := AllocSweep()

	tbl := metrics.NewTable("§IV-B pressure + one legit /24 sibling (12 attackers, 4 slots, 10 s)",
		"policy", "attack B delivered", "legit B delivered", "aggregations", "collateral addrs", "est collateral B")
	for _, c := range cells {
		tbl.AddRow(c.Policy, c.AttackBytes, c.LegitBytes, c.Aggregations, c.CollateralAddrs, c.CollateralBytes)
	}
	tbl.AddNote("the fixed /24 fallback must cover the legit sibling to relieve the table; the allocator covers the twelve attackers at /28 and spares it")
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"Shape check: the allocator row delivers strictly more legit bytes and no more attack bytes than the fixed row, with strictly lower covered-address collateral.")
	return res
}
