package scenario

import (
	"testing"
	"time"

	"aitf"
)

// chaosSpec is a property-seed scenario with the full hostile-network
// stack forced on: seeded control-plane loss (≤ 5%), a mid-attack
// victim-gateway crash/restore, and the reliable control messenger
// armed. The attack window is stretched a little so the crash lands
// while rounds are in flight.
func chaosSpec(seed int64) Spec {
	s := GenSpec(seed)
	s.Faults = FaultSpec{
		CtrlLossPct:   1 + float64(seed%5), // 1–5%
		Flaps:         int(seed % 3),
		CrashVictimGW: true,
		Retransmit:    true,
	}
	if s.AttackDur < 5*time.Second {
		s.AttackDur = 5 * time.Second
	}
	return s
}

// TestScenarioChaos is the acceptance suite for the hostile-network
// layer: 50 seeded chaos scenarios — control loss, link flaps, and a
// victim-gateway crash restored from snapshot mid-attack — and every
// protocol invariant must hold in each, including the new
// control-reliability ledger (invariant 6).
func TestScenarioChaos(t *testing.T) {
	for seed := int64(1); seed <= propertySeeds; seed++ {
		seed := seed
		s := chaosSpec(seed)
		t.Run(s.name(), func(t *testing.T) {
			t.Parallel()
			res := Run(s)
			if res.Failed() {
				t.Fatalf("invariants violated under chaos:\n%s", res.Report())
			}
			if res.GatewayCrashes == 0 {
				t.Fatalf("victim gateway never crashed:\n%s", res.Report())
			}
			if res.AttackSent == 0 && s.Steady+s.Pulsers+s.Spoofers > 0 {
				t.Fatalf("no attack traffic entered the network:\n%s", res.Report())
			}
		})
	}
}

// TestScenarioChaosDeterminism: fault schedules are seeded, so a chaos
// run — loss draws, flap timing, crash snapshot and restore — replays
// to the identical fingerprint.
func TestScenarioChaosDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 17, 41} {
		s := chaosSpec(seed)
		a, b := Run(s), Run(s)
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("seed %d: chaos fingerprints differ: %016x vs %016x\n%s\n%s",
				seed, a.Fingerprint, b.Fingerprint, a.Report(), b.Report())
		}
	}
}

// TestScenarioChaosRecovers pins the tentpole's point: across the
// chaos seeds the machinery demonstrably engages — control packets are
// lost, the messenger retransmits, duplicate deliveries are absorbed,
// gateways crash and restore — and the attacks still get stopped
// (suppression or escalation shows up, and the bandwidth bound held in
// TestScenarioChaos proves the victims were protected).
func TestScenarioChaosRecovers(t *testing.T) {
	var lost, retx, dup, restored, acted int
	for seed := int64(1); seed <= 25; seed++ {
		s := chaosSpec(seed)
		w := build(s.normalized())
		w.dep.Run(w.runEnd)
		res := w.check()
		if res.Failed() {
			t.Fatalf("seed %d:\n%s", seed, res.Report())
		}
		if res.CtrlLossDrops > 0 {
			lost++
		}
		if res.CtrlRetransmits > 0 {
			retx++
		}
		if res.CtrlDupDrops > 0 {
			dup++
		}
		if w.dep.Log.Count(aitf.EvGatewayRestored) > 0 {
			restored++
		}
		if res.AttackSuppressed > 0 || res.Escalations > 0 ||
			w.dep.Log.Count(aitf.EvTempFilterInstalled) > 0 ||
			w.dep.Log.Count(aitf.EvFilterInstalled) > 0 {
			acted++
		}
	}
	if lost < 15 {
		t.Errorf("control packets were lost in only %d/25 chaos runs", lost)
	}
	if retx < 15 {
		t.Errorf("the messenger retransmitted in only %d/25 chaos runs", retx)
	}
	if dup < 5 {
		t.Errorf("duplicate deliveries were absorbed in only %d/25 chaos runs", dup)
	}
	if restored < 25 {
		t.Errorf("the crashed gateway restored in only %d/25 chaos runs", restored)
	}
	if acted < 20 {
		t.Errorf("the protocol acted on the attack in only %d/25 chaos runs", acted)
	}
}
