package scenario

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"aitf"
	"aitf/internal/attack"
	"aitf/internal/contract"
	"aitf/internal/flow"
	"aitf/internal/sim"
	"aitf/internal/topology"
)

// check runs every invariant over the finished world and assembles the
// Result.
func (w *world) check() *Result {
	r := &Result{
		Spec:        w.spec,
		Hosts:       len(w.dep.Hosts),
		Gateways:    len(w.dep.Gateways),
		NonCoopGWs:  len(w.nonCoop),
		Victims:     len(w.victims),
		Attackers:   len(w.attackers),
		Legit:       len(w.legit),
		ReqFlooders: len(w.flooders),
		Events:      len(w.dep.Log.Events),
	}
	for _, a := range w.attackers {
		if a.launched.Flood != nil {
			r.AttackSent += a.launched.Flood.Sent * uint64(a.launched.Flood.PacketSize)
			r.AttackSuppressed += a.launched.Flood.Suppressed
		}
	}
	for _, v := range w.victims {
		r.VictimBytes += w.dep.Host(v.node).Meter.Bytes
	}
	r.Disconnects = w.dep.Log.Count(aitf.EvDisconnected)
	r.Escalations = w.dep.Log.Count(aitf.EvEscalated)
	r.Aggregations = w.dep.Log.Count(aitf.EvAggregated)
	for _, g := range w.dep.Gateways {
		st := g.Stats()
		r.Collateral += st.AggregateCollateral
		r.CollateralBytes += st.AggregateCollateralBytes
	}

	w.checkLegitNeverFiltered(r)
	w.checkBudgets(r)
	w.checkEscalationTerminates(r)
	w.checkBandwidthBound(r)
	w.checkDetectionAccuracy(r)
	w.checkControlReliability(r)
	w.checkReplicationConsistency(r)
	r.Fingerprint = w.fingerprint()
	return r
}

func (w *world) violate(r *Result, invariant, node, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Invariant: invariant,
		Node:      node,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// ── Invariant 1: no legitimate flow is permanently filtered ──────────

// protectedSrcs returns every source address that must never be named
// by a filter or stop order: all real hosts except the data-plane
// attackers (spoofed sources live in 240/8 and are not protected).
func (w *world) protectedSrcs() map[flow.Addr]bool {
	out := map[flow.Addr]bool{}
	for _, hs := range w.nodes.Hosts {
		for _, h := range hs {
			out[w.topo.Nodes[h].Addr] = true
		}
	}
	for _, a := range w.attackers {
		delete(out, a.addr)
	}
	return out
}

func (w *world) checkLegitNeverFiltered(r *Result) {
	protected := w.protectedSrcs()
	// Sorted view for deterministic prefix-coverage reporting.
	sortedProtected := make([]flow.Addr, 0, len(protected))
	for a := range protected {
		sortedProtected = append(sortedProtected, a)
	}
	sort.Slice(sortedProtected, func(i, j int) bool { return sortedProtected[i] < sortedProtected[j] })
	// covered reports the first protected source a label's source field
	// covers. Concrete host sources use the map; prefix sources (the
	// aggregates installed under table pressure) must not blanket any
	// protected address either — coarser filters may trade table slots
	// for collateral only across the attacker's spoofed range, never
	// across real hosts. Labels that wildcard the source entirely are
	// dst-scoped and exempt, as before.
	covered := func(l flow.Label) (flow.Addr, bool) {
		if l.Wildcards&flow.WildSrc != 0 {
			return 0, false
		}
		if l.SrcPrefixLen == 0 {
			if protected[l.Src] {
				return l.Src, true
			}
			return 0, false
		}
		for _, a := range sortedProtected {
			if l.CoversSrc(a) {
				return a, true
			}
		}
		return 0, false
	}
	filterish := map[aitf.EventKind]bool{
		aitf.EvTempFilterInstalled: true,
		aitf.EvFilterInstalled:     true,
		aitf.EvShadowLogged:        true,
		aitf.EvLongBlock:           true,
		aitf.EvStopOrder:           true,
		aitf.EvAggregated:          true,
	}
	for _, e := range w.dep.Log.Events {
		if !filterish[e.Kind] {
			continue
		}
		if src, bad := covered(e.Flow); bad {
			w.violate(r, "legit-filtered", e.Node,
				"%s names protected source %v (flow %s at %v)", e.Kind, src, e.Flow, e.T)
		}
	}
	// Nothing protected may be left in any filter table either.
	for id, g := range w.dep.Gateways {
		for _, fe := range g.DataPlane().FilterEntries() {
			if src, bad := covered(fe.Label); bad {
				w.violate(r, "legit-filtered", w.topo.Nodes[id].Name,
					"final filter table holds protected source %v (%s)", src, fe.Label)
			}
		}
	}
	// Legit and victim hosts must never have been ordered to stop.
	for _, l := range w.legit {
		if st := w.dep.Host(l.node).Stats(); st.StopOrders > 0 || st.StoppedSends > 0 {
			w.violate(r, "legit-filtered", w.topo.Nodes[l.node].Name,
				"legit host got %d stop orders, %d sends suppressed", st.StopOrders, st.StoppedSends)
		}
	}

	// Liveness: legit flows whose path avoids every disconnected link
	// must still be arriving at the end of the run.
	if w.spec.Overload {
		return
	}
	for _, l := range w.legit {
		if w.pathDisconnected(l.node, l.victim.node) {
			continue // protocol-intended collateral (§II-D)
		}
		m := w.dep.Host(l.victim.node).PerSource[l.addr]
		if m == nil {
			w.violate(r, "legit-filtered", w.topo.Nodes[l.node].Name,
				"legit flow to %s never arrived", w.topo.Nodes[l.victim.node].Name)
			continue
		}
		if w.runEnd-m.Last() > sim.Time(2500*time.Millisecond) {
			w.violate(r, "legit-filtered", w.topo.Nodes[l.node].Name,
				"legit flow to %s starved: last packet at %v, run end %v",
				w.topo.Nodes[l.victim.node].Name, m.Last(), w.runEnd)
		}
	}
}

// pathDisconnected walks the routed path from a to b and reports
// whether any hop would be refused by a gateway's active disconnection.
func (w *world) pathDisconnected(a, b topology.NodeID) bool {
	dst := w.topo.Nodes[b].Addr
	cur := w.dep.Net.Node(a)
	for cur.Addr() != dst {
		hop := cur.NextHop(dst)
		if hop == nil {
			return true // unroutable counts as disconnected
		}
		next := hop.Neighbor()
		if g := w.dep.Gateways[next.ID()]; g != nil && g.Disconnected(cur.Addr()) {
			return true
		}
		cur = next
	}
	return false
}

// pathCrossesGateway reports whether the routed path from a to b
// passes through at least one deployed AITF gateway. Flows that never
// touch an AITF node (e.g. attacker and victim on the same internal
// LAN segment) are structurally invisible to the protocol.
func (w *world) pathCrossesGateway(a, b topology.NodeID) bool {
	dst := w.topo.Nodes[b].Addr
	cur := w.dep.Net.Node(a)
	for cur.Addr() != dst {
		hop := cur.NextHop(dst)
		if hop == nil {
			return false
		}
		cur = hop.Neighbor()
		if w.dep.Gateways[cur.ID()] != nil {
			return true
		}
	}
	return false
}

// ── Invariant 2: resource budgets are never exceeded ─────────────────

func (w *world) checkBudgets(r *Result) {
	for id, g := range w.dep.Gateways {
		name := w.topo.Nodes[id].Name
		cfg := g.Config()
		fs := g.DataPlane().FilterStats()
		if fs.PeakOccupancy > cfg.FilterCapacity {
			w.violate(r, "budget", name,
				"filter peak %d exceeds wire-speed capacity %d", fs.PeakOccupancy, cfg.FilterCapacity)
		}
		ss := g.DataPlane().ShadowStats()
		if ss.PeakSize > cfg.ShadowCapacity {
			w.violate(r, "budget", name,
				"shadow peak %d exceeds cache capacity %d", ss.PeakSize, cfg.ShadowCapacity)
		}
	}
	// Collateral budget: aggregation trades table slots for collateral
	// coverage, but never coarser than the configured policy allows. No
	// installed aggregate may be shallower than the shallowest rung
	// (/24 here, fixed or allocator), so the covered-address collateral
	// a gateway accrues is bounded by its aggregation count times one
	// full /24 — coarser picks would blanket address space the policy
	// never authorised.
	const maxCoverPerAgg = uint64(1) << (32 - aggShallowest)
	for _, e := range w.dep.Log.OfKind(aitf.EvAggregated) {
		if e.Flow.SrcPrefixLen != 0 && e.Flow.SrcPrefixLen < aggShallowest {
			w.violate(r, "budget", e.Node,
				"aggregate %s coarser than the /%d policy floor", e.Flow, aggShallowest)
		}
	}
	for id, g := range w.dep.Gateways {
		st := g.Stats()
		if st.AggregateCollateral > st.Aggregations*maxCoverPerAgg {
			w.violate(r, "budget", w.topo.Nodes[id].Name,
				"covered-address collateral %d exceeds %d aggregations × /%d budget (%d)",
				st.AggregateCollateral, st.Aggregations, aggShallowest,
				st.Aggregations*maxCoverPerAgg)
		}
	}
	// Client-side budget (§IV-D): active stop orders are bounded by
	// na = R2·T plus the policer burst.
	cc := contract.DefaultEndHost()
	na := contract.AttackerGatewayFilters(cc.R2, timerT) + int(cc.R2Burst)
	for id, h := range w.dep.Hosts {
		if n := h.ActiveStopOrders(); n > na {
			w.violate(r, "budget", w.topo.Nodes[id].Name,
				"host holds %d active stop orders, provisioned for %d", n, na)
		}
	}
}

// ── Invariant 3: escalation always terminates ────────────────────────

func (w *world) checkEscalationTerminates(r *Result) {
	quiesceBy := w.attackStop + sim.Time(settleTime)
	maxPulses := 0
	for _, a := range w.attackers {
		if a.behavior == attack.Pulse {
			p := int(w.spec.AttackDur/(a.on+a.off)) + 2
			if p > maxPulses {
				maxPulses = p
			}
		}
	}
	bound := len(w.dep.Gateways) + 2*maxPulses + int(w.spec.AttackDur/timerTtmp) + 4
	// A hostile network stretches but never breaks termination: lost
	// control messages make rounds repeat per Ttmp re-block cycle, a
	// flap or crash interrupts (and restarts) in-flight rounds, and
	// retransmission ladders add up to one backoff tail of in-flight
	// slack past the attack stop.
	if f := w.spec.Faults; f.Enabled() {
		quiesceBy += sim.Time(2 * time.Second)
		bound += 2 + 2*f.Flaps
		if f.CtrlLossPct > 0 {
			bound += int(w.spec.AttackDur/timerTtmp) + 2
		}
		if f.CrashVictimGW {
			bound += 2
		}
	}

	rounds := map[string]int{}
	for _, e := range w.dep.Log.OfKind(aitf.EvEscalated) {
		if e.T > quiesceBy {
			w.violate(r, "escalation-terminates", e.Node,
				"escalation of %s at %v, after quiesce deadline %v (attack stopped %v)",
				e.Flow, e.T, quiesceBy, w.attackStop)
		}
		key := e.Node + "|" + e.Flow.String()
		rounds[key]++
		if rounds[key] == bound+1 { // report once per (node, flow)
			w.violate(r, "escalation-terminates", e.Node,
				"flow %s escalated more than %d times at one gateway", e.Flow, bound)
		}
	}
}

// ── Invariant 4: effective bandwidth stays within the r-bound ────────

// checkBandwidthBound asserts the paper's §IV-A.1 claim per undesired
// flow: with n non-cooperating AITF nodes on the path, the victim sees
// roughly n leaks of (Td+Tr) worth of traffic, not the raw flood. The
// allowance below is that analytic bound with a slack factor of 2 plus
// a per-round propagation window — loose enough to be robust across
// random topologies, tight enough that an unfiltered flood (rate ×
// duration) blows straight through it.
func (w *world) checkBandwidthBound(r *Result) {
	if w.spec.Overload {
		return
	}
	const (
		slack   = 2.0
		leakWin = 0.30 // per-round re-detect + request travel + in-flight
		floorB  = 20_000
	)
	// Detection latency allowance. The oracle anchors its window at a
	// flow's first packet, so Td ≤ window + crossing time. The sketch
	// engines rotate on epoch-aligned windows, which can add up to one
	// full window of alignment slack; the space-saving lower bound can
	// add one more crossing's worth under churn.
	tdBound := 0.35 // oracle: detector window (0.25 s) + margin
	if w.spec.Detector != DetectorOracle {
		tdBound = 0.70
	}
	// Hostile-network allowance. Control loss does not delay detection
	// (that is data-path, and data packets are never loss-dropped) but
	// it delays the filter round trip: with retransmission the recovery
	// is one or two RTO backoffs per lost leg; without it, recovery
	// rides the victim's Ttmp re-block cycles, so the allowance grows
	// much faster with the loss rate. A flap hides the uplink for its
	// dark period; a crash hides the victim gateway for crashDowntime
	// plus the re-verification round after restore.
	if f := w.spec.Faults; f.CtrlLossPct > 0 {
		if f.Retransmit {
			tdBound += 0.4 + 0.05*f.CtrlLossPct
		} else {
			tdBound += 1.0 + 0.35*f.CtrlLossPct
		}
	}
	tdBound += 0.4 * float64(w.spec.Faults.Flaps)
	if w.spec.Faults.CrashVictimGW {
		tdBound += crashDowntime.Seconds() + 0.5
	}
	for _, a := range w.attackers {
		if a.behavior != attack.Steady && a.behavior != attack.Pulse {
			continue // spoofed labels are checked via budgets instead
		}
		if !w.pathCrossesGateway(a.node, a.victim.node) {
			// No AITF node between attacker and victim (same internal
			// LAN segment): the protocol is structurally blind here and
			// promises nothing (§II-A: filtering lives at border
			// routers).
			continue
		}
		m := w.dep.Host(a.victim.node).PerSource[a.addr]
		var got uint64
		if m != nil {
			got = m.Bytes
		}
		n := 1
		for _, as := range w.nodes.ASPath(a.as, a.victim.as) {
			if w.deployed[as] && w.nonCoop[as] {
				n++
			}
		}
		pulses := 0
		if a.behavior == attack.Pulse {
			pulses = int(w.spec.AttackDur/(a.on+a.off)) + 2
		}
		allowed := slack*a.rate*(tdBound+float64(n+pulses+1)*leakWin) + floorB
		if float64(got) > allowed {
			w.violate(r, "bandwidth-bound", w.topo.Nodes[a.victim.node].Name,
				"flow %v->%v (%s, n=%d, pulses=%d) delivered %d B, analytic bound %.0f B",
				a.addr, a.victim.addr, a.behavior, n, pulses, got, allowed)
		}
	}
}

// ── Invariant 5: detection is sound ──────────────────────────────────

// checkDetectionAccuracy asserts the false-positive bound — a
// legitimate flow held under threshold (legit senders run at ≤ half
// the detection threshold by construction) is never detected as an
// attack, whichever detector kind the scenario runs: the oracle
// measures exactly, and the sketch engine's two-stage decision only
// flags flows whose exact lower bound crossed the threshold. It also
// accounts false negatives: steady attackers that crossed an AITF
// gateway but were never detected.
func (w *world) checkDetectionAccuracy(r *Result) {
	protected := w.protectedSrcs()
	detected := map[flow.Label]bool{}
	for _, e := range w.dep.Log.OfKind(aitf.EvAttackDetected) {
		r.Detections++
		detected[e.Flow.Key()] = true
		if e.Flow.Wildcards&flow.WildSrc == 0 && e.Flow.SrcPrefixLen == 0 && protected[e.Flow.Src] {
			r.FalsePositives++
			w.violate(r, "detector-fp", e.Node,
				"legit source %v (≤ %.0f B/s, threshold %d B/s) detected as attack (flow %s at %v)",
				e.Flow.Src, 0.5*detectThreshold, int(detectThreshold), e.Flow, e.T)
		}
	}
	for _, a := range w.attackers {
		if a.behavior != attack.Steady {
			continue // pulsed/spoofed labels are not guaranteed-detectable
		}
		if !w.pathCrossesGateway(a.node, a.victim.node) {
			continue // structurally invisible to AITF, and to a gateway detector
		}
		if !detected[flow.PairLabel(a.addr, a.victim.addr).Key()] {
			r.MissedAttackers++
		}
	}
}

// ── Invariant 6: control-plane reliability is bounded and balanced ───

// checkControlReliability asserts the reliable-messenger contracts on
// every gateway, fault or no fault: the handshake ledger balances
// (every handshake started is resolved OK, resolved failed, or still
// pending at run end — nothing leaks), retransmission terminates (at
// most MaxAttempts−1 retransmits per reliable send, and no ladder is
// still outstanding after the drain), and scenarios without the
// reliable messenger never retransmit at all. It also gathers the
// fault-accounting totals into the Result.
func (w *world) checkControlReliability(r *Result) {
	for id, g := range w.dep.Gateways {
		name := w.topo.Nodes[id].Name
		st := g.Stats()
		r.CtrlRetransmits += st.CtrlRetransmits
		r.CtrlDupDrops += st.CtrlDupDrops
		if got, want := st.HandshakesStarted, st.HandshakesOK+st.HandshakesFailed+uint64(g.PendingHandshakes()); got != want {
			w.violate(r, "control-reliability", name,
				"handshake ledger out of balance: %d started vs %d ok + %d failed + %d pending",
				st.HandshakesStarted, st.HandshakesOK, st.HandshakesFailed, g.PendingHandshakes())
		}
		if w.spec.Faults.Retransmit {
			if st.CtrlRetransmits > st.CtrlReliableSends*uint64(ctrlAttempts-1) {
				w.violate(r, "control-reliability", name,
					"%d retransmits exceed %d reliable sends × %d max extra attempts",
					st.CtrlRetransmits, st.CtrlReliableSends, ctrlAttempts-1)
			}
		} else if st.CtrlRetransmits != 0 {
			w.violate(r, "control-reliability", name,
				"%d retransmits without the reliable messenger armed", st.CtrlRetransmits)
		}
		if n := g.OutstandingReliable(); n != 0 {
			w.violate(r, "control-reliability", name,
				"%d retransmission ladders still outstanding after the drain", n)
		}
	}
	for _, h := range w.dep.Hosts {
		r.CtrlDupDrops += h.Stats().CtrlDupDrops
	}
	for _, n := range w.topo.Nodes {
		st := w.dep.Net.Node(n.ID).AggStats()
		r.CtrlLossDrops += st.CtrlLossDrops
		r.DataLossDrops += st.DataLossDrops
	}
	r.GatewayCrashes = w.dep.Log.Count(aitf.EvGatewayCrashed)
	if !w.spec.Faults.Enabled() && (r.CtrlLossDrops != 0 || r.DataLossDrops != 0 || r.GatewayCrashes != 0) {
		w.violate(r, "control-reliability", "net",
			"fault-free run recorded %d/%d loss drops and %d crashes",
			r.CtrlLossDrops, r.DataLossDrops, r.GatewayCrashes)
	}
	// Data packets are never loss-dropped by the fault model (control-
	// only loss keeps data accounting exact).
	if r.DataLossDrops != 0 && w.spec.Faults.Flaps == 0 && !w.spec.Faults.CrashVictimGW {
		w.violate(r, "control-reliability", "net",
			"%d data packets loss-dropped under control-only loss", r.DataLossDrops)
	}
}

// ── Invariant 7: replication is consistent ───────────────────────────

// checkReplicationConsistency asserts the gateway-cluster contracts
// after quiesce: one final merge round ships any tail of the
// replicated log, and then every live replica's filter view must agree
// with a replay of that log (cluster.CheckConsistency); with
// replication on, no failover may have lost a filter — the survivors
// already held every one; and no live replica's view may name a
// protected legitimate source it never observed (exact pair labels —
// aggregates are priced by the invariant-2 collateral budget instead).
// Cluster-free runs must show no cluster activity at all.
func (w *world) checkReplicationConsistency(r *Result) {
	if !w.spec.Cluster.Enabled() {
		if n := w.dep.Log.Count(aitf.EvClusterMerge) + w.dep.Log.Count(aitf.EvReplicaKilled); n != 0 {
			w.violate(r, "replication-consistency", "net",
				"cluster-free run recorded %d cluster events", n)
		}
		return
	}
	now := w.dep.Engine.Now()
	protected := w.protectedSrcs()
	for id, g := range w.dep.Gateways {
		clu := g.Cluster()
		if clu == nil {
			continue
		}
		name := w.topo.Nodes[id].Name
		// Final quiesce round: ops recorded after the last scheduled
		// merge have not shipped yet; failover-consistency is judged on
		// the settled log.
		clu.MergeRound(now)
		if msg := clu.CheckConsistency(now); msg != "" {
			w.violate(r, "replication-consistency", name, "%s", msg)
		}
		st := clu.Stats()
		r.ClusterMergeRounds += st.MergeRounds
		r.ClusterMergeBytes += st.MergeBytes
		r.ClusterFailovers += st.Failovers
		r.ClusterFiltersInherited += st.FiltersInherited
		r.ClusterFiltersLost += st.FiltersLost
		r.ClusterLogLen += clu.LogLen()
		if w.spec.Cluster.Replicate && st.FiltersLost > 0 {
			w.violate(r, "replication-consistency", name,
				"replicated failover lost %d filters (inherited %d)",
				st.FiltersLost, st.FiltersInherited)
		}
		for i := 0; i < clu.Replicas(); i++ {
			if !clu.Alive(i) {
				continue
			}
			for lbl, exp := range clu.FilterView(i) {
				if exp <= now {
					continue
				}
				if lbl.Wildcards&flow.WildSrc == 0 && lbl.SrcPrefixLen == 0 && protected[lbl.Src] {
					w.violate(r, "replication-consistency", name,
						"replica %d holds a filter naming protected source %v (%s)", i, lbl.Src, lbl)
				}
			}
		}
	}
}

// ── Fingerprint ──────────────────────────────────────────────────────

// fingerprint hashes the full protocol event trace plus every meter and
// counter, so two runs agree iff they behaved identically.
func (w *world) fingerprint() uint64 {
	h := fnv.New64a()
	add := func(format string, args ...any) {
		fmt.Fprintf(h, format, args...)
	}
	for _, e := range w.dep.Log.Events {
		add("%d|%s|%d|%s|%s\n", e.T, e.Node, e.Kind, e.Flow, e.Detail)
	}

	hostIDs := make([]int, 0, len(w.dep.Hosts))
	for id := range w.dep.Hosts {
		hostIDs = append(hostIDs, int(id))
	}
	sort.Ints(hostIDs)
	for _, id := range hostIDs {
		host := w.dep.Hosts[topology.NodeID(id)]
		st := host.Stats()
		add("h%d:%+v:%d:%d\n", id, st, host.Meter.Bytes, host.Meter.Packets)
		srcs := make([]int, 0, len(host.PerSource))
		for a := range host.PerSource {
			srcs = append(srcs, int(a))
		}
		sort.Ints(srcs)
		for _, a := range srcs {
			add("s%d:%d\n", a, host.PerSource[flow.Addr(a)].Bytes)
		}
	}

	gwIDs := make([]int, 0, len(w.dep.Gateways))
	for id := range w.dep.Gateways {
		gwIDs = append(gwIDs, int(id))
	}
	sort.Ints(gwIDs)
	for _, id := range gwIDs {
		g := w.dep.Gateways[topology.NodeID(id)]
		add("g%d:%+v:%+v:%+v\n", id, g.Stats(), g.DataPlane().FilterStats(), g.DataPlane().ShadowStats())
		if clu := g.Cluster(); clu != nil {
			st := clu.Stats()
			// CatchupNanos is wall clock — it must never enter a replay
			// fingerprint.
			st.CatchupNanos = 0
			add("c%d:%d:%+v\n", id, clu.LogLen(), st)
		}
	}
	return h.Sum64()
}
