// Package scenario is the seeded adversarial scenario harness: it
// turns the AITF simulator into a property-testing machine. From a
// single int64 seed it generates a random multi-AS topology
// (topology.Random), a partial AITF deployment, a mixed attacker army
// (internal/attack behavior profiles: steady floods, on-off pulsers,
// source spoofers, filter-request flooders, colluding non-cooperative
// gateways) plus legitimate background traffic, runs the whole thing
// through the generic aitf.DeployTopology entry point on the dataplane
// engine, and checks the protocol's core invariants afterwards:
//
//  1. no legitimate flow is ever named by an installed filter or stop
//     order, and legit flows off the disconnected subtrees stay alive;
//  2. wire-speed filter and shadow-cache budgets are never exceeded;
//  3. escalation always terminates — once the attack stops, rounds
//     quiesce, and no (gateway, flow) pair escalates more than the
//     structural bound allows;
//  4. each undesired flow's bytes at the victim stay within the
//     analytic effective-bandwidth bound r ≈ n(Td+Tr)/T (§IV-A.1),
//     with a modest slack factor.
//
// Every stochastic choice is drawn from rand sources derived from the
// seed, so a failing scenario replays byte-identically (same seed ⇒
// same event trace ⇒ same Fingerprint). The harness is exposed as
// go-test properties (scenario_test.go), a native fuzz target
// (FuzzScenario), and the cmd/aitf-scenario CLI.
package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"aitf"
	"aitf/internal/alloc"
	"aitf/internal/attack"
	"aitf/internal/cluster"
	"aitf/internal/contract"
	"aitf/internal/core"
	"aitf/internal/detect"
	"aitf/internal/flow"
	"aitf/internal/sim"
	"aitf/internal/topology"
)

// Protocol and network constants shared by every generated scenario.
// They are deliberately compressed relative to the paper's examples
// (T = 1 min there) so that one scenario fits in ~15 s of virtual time
// while keeping the orderings that matter: Ttmp ≪ T, pulser off-period
// > Ttmp, penalty > run length.
const (
	timerT       = 25 * time.Second
	timerTtmp    = 1500 * time.Millisecond
	timerGrace   = 250 * time.Millisecond
	timerPenalty = 2 * time.Minute

	accessDelay   = 20 * time.Millisecond
	backboneDelay = 5 * time.Millisecond
	tailBandwidth = 1.25e6 // the paper's 10 Mbit/s tail circuit

	detectThreshold = 30_000 // bytes/s flagged by the victim's detector
	detectWindow    = 250 * time.Millisecond

	// aggShallowest is the coarsest source prefix any scenario gateway
	// may install under table pressure — the fixed fallback length, and
	// the shallowest rung of the collateral-aware allocator's ladder.
	// Invariant 2's collateral budget is derived from it.
	aggShallowest = 24

	// attackWindowStart is when the first attacker may begin.
	attackWindowStart = 1 * time.Second
	// settleTime bounds how long after the attack stops escalation
	// activity may continue (one in-flight round plus slack).
	settleTime = timerTtmp + 2*time.Second

	// Reliable-control parameters for Faults.Retransmit scenarios: four
	// attempts at RTO 120 ms with exponential backoff (±25% jitter)
	// finish the whole ladder in ≈ 840 ms, inside the 1 s handshake
	// timeout, so a retransmitted verification still lands in its
	// window.
	ctrlAttempts = 4
	ctrlRTO      = 120 * time.Millisecond
	ctrlJitter   = 0.25

	// crashDowntime is how long a crashed victim gateway stays dark
	// before it restores from its snapshot; flapDowntime is one link
	// flap's dark period.
	crashDowntime = 300 * time.Millisecond
	flapDowntime  = 150 * time.Millisecond
)

// Detector kinds selectable per scenario (Spec.Detector). Oracle is
// the paper's assumption — an exact per-source rate classifier whose
// latency is essentially its window. Sketch replaces it with the real
// streaming measurement engine (internal/detect) on each victim host,
// making detection latency, FPs and FNs emergent. Gateway moves that
// engine onto the victims' gateways, modelling victims as legacy
// non-AITF hosts that are defended on their behalf — the deployment
// scenario where detection, filtering, and the §II-E handshake all
// live at the border router.
const (
	DetectorOracle = iota
	DetectorSketch
	DetectorGateway
)

// FaultSpec describes the hostile-network conditions a scenario runs
// under. The zero value is fault-free: no fault randomness is drawn and
// the run replays byte-identically to pre-fault builds.
type FaultSpec struct {
	// CtrlLossPct is seeded random loss, in percent (0–20), applied to
	// control packets on every backbone (border↔border) link — the
	// paper's hard case of signaling squeezed by the congestion it is
	// trying to relieve. Data packets are never loss-dropped, so
	// data-plane accounting stays exact.
	CtrlLossPct float64 `json:"ctrl_loss_pct"`
	// Flaps schedules this many down/up flaps (each flapDowntime long)
	// of the first victim's uplink during the attack window.
	Flaps int `json:"flaps"`
	// CrashVictimGW crashes the first victim's serving gateway
	// mid-attack (queued packets lost, volatile state gone) and
	// restores it from its pre-crash snapshot crashDowntime later.
	CrashVictimGW bool `json:"crash_victim_gw"`
	// Retransmit arms the reliable control messenger on every gateway:
	// bounded retransmission with exponential backoff around protocol
	// sends. Off, lost control messages are recovered only by the
	// victim's re-requests, as in the base protocol.
	Retransmit bool `json:"retransmit"`
}

// Enabled reports whether any fault is configured.
func (f FaultSpec) Enabled() bool {
	return f.CtrlLossPct > 0 || f.Flaps > 0 || f.CrashVictimGW
}

// ClusterSpec configures the gateway-cluster layer: every deployed
// gateway runs as Replicas sketch-merging logical replicas with a
// replicated filter log (internal/cluster). The zero value keeps
// classic single-replica gateways and draws no cluster randomness.
type ClusterSpec struct {
	// Replicas is the logical replica count per gateway (< 2 disables).
	Replicas int `json:"replicas"`
	// MergeMs is the merge-round interval in milliseconds; it is never
	// allowed below the detection window (the merged lower bound needs
	// at least one full window between exchanges).
	MergeMs int `json:"merge_ms"`
	// Replicate arms the replicated filter log; off, each replica keeps
	// only its own filters — the independent-gateways contrast that
	// loses them on a crash.
	Replicate bool `json:"replicate"`
	// KillReplica kills one logical replica of the first victim's
	// serving gateway mid-attack (replica-death chaos): its flows
	// reassign to the survivors and, with Replicate on, every one of
	// its filters must already be held by them.
	KillReplica bool `json:"kill_replica"`
}

// Enabled reports whether the spec describes a real cluster.
func (c ClusterSpec) Enabled() bool { return c.Replicas >= 2 }

// Spec is a fully deterministic scenario description. GenSpec derives
// one from a seed; the CLI can also replay or minimize an explicit
// spec. Run(s) is a pure function of the Spec value.
type Spec struct {
	Seed          int64 `json:"seed"`
	ASes          int   `json:"ases"`
	Tier1         int   `json:"tier1"`
	MaxHostsPerAS int   `json:"max_hosts_per_as"`
	// DeployPct is the percentage of non-tier-1 ASes running AITF.
	DeployPct int `json:"deploy_pct"`

	Victims     int `json:"victims"`
	Legit       int `json:"legit"`
	Steady      int `json:"steady"`
	Pulsers     int `json:"pulsers"`
	Spoofers    int `json:"spoofers"`
	ReqFlooders int `json:"req_flooders"`
	// Exhausters are filter-table exhaustion adversaries: spoofed /24
	// sibling sprays that force the victim gateway to aggregate.
	Exhausters int `json:"exhausters"`
	// NonCoop is how many attackers get a colluding (non-cooperative)
	// gateway on their path.
	NonCoop int `json:"non_coop"`

	AttackRate float64       `json:"attack_rate"` // bytes/s per attacker
	LegitRate  float64       `json:"legit_rate"`  // bytes/s per legit sender
	AttackDur  time.Duration `json:"attack_dur"`
	Drain      time.Duration `json:"drain"`

	IngressFiltering bool `json:"ingress_filtering"`
	GatewayAuto      bool `json:"gateway_auto"`
	BatchDelivery    bool `json:"batch_delivery"`
	Shards           int  `json:"shards"`
	// Detector selects the detection machinery: DetectorOracle (exact
	// per-source rate oracle on victim hosts), DetectorSketch
	// (internal/detect sketch engine on victim hosts), or
	// DetectorGateway (sketch engine on the victims' gateways; victims
	// are legacy hosts with no detector of their own).
	Detector int `json:"detector"`
	// Overload deliberately exceeds the victim's tail circuit; the
	// bandwidth-bound and liveness checks are skipped (congestion
	// losses are not protocol failures), the others still apply.
	Overload bool `json:"overload"`
	// CollateralAlloc replaces the fixed /24 aggregation fallback with
	// the collateral-aware allocator (internal/alloc): under table
	// pressure the gateway prices candidate prefixes at /28–/24 by
	// estimated collateral and picks the cheapest cover. All invariants
	// — including the invariant-2 collateral budget — must hold either
	// way.
	CollateralAlloc bool `json:"collateral_alloc"`
	// Faults configures the hostile-network conditions (control-plane
	// loss, link flaps, a victim-gateway crash/restore) the scenario
	// must survive. Zero value = pristine network.
	Faults FaultSpec `json:"faults"`
	// Cluster runs every deployed gateway as a cluster of
	// sketch-merging logical replicas (invariant 7 applies). Zero
	// value = single-replica gateways.
	Cluster ClusterSpec `json:"cluster"`
}

// GenSpec derives a scenario shape from a seed. Sizes are tuned so a
// single scenario runs in well under a second of wall time while still
// covering tens of ASes and a mixed army.
func GenSpec(seed int64) Spec {
	rng := rand.New(rand.NewSource(seed))
	s := Spec{
		Seed:          seed,
		ASes:          6 + rng.Intn(9),
		Tier1:         2 + rng.Intn(2),
		MaxHostsPerAS: 2 + rng.Intn(2),
		DeployPct:     50 + rng.Intn(51),
		Victims:       1 + rng.Intn(2),
		Legit:         3 + rng.Intn(3),
		Steady:        1 + rng.Intn(2),
		Pulsers:       rng.Intn(3),
		Spoofers:      rng.Intn(2),
		ReqFlooders:   rng.Intn(2),
		Exhausters:    rng.Intn(2),
		NonCoop:       rng.Intn(3),
		AttackRate:    60_000 + 60_000*rng.Float64(),
		LegitRate:     4_000 + 5_000*rng.Float64(),
		AttackDur:     4*time.Second + time.Duration(rng.Int63n(int64(3*time.Second))),
		Drain:         6 * time.Second,

		IngressFiltering: rng.Float64() < 0.4,
		GatewayAuto:      rng.Float64() < 0.25,
		BatchDelivery:    rng.Float64() < 0.5,
		Shards:           1 << rng.Intn(3),
		// 40% oracle, 40% host-side sketch, 20% gateway-side sketch.
		Detector: []int{DetectorOracle, DetectorOracle, DetectorSketch,
			DetectorSketch, DetectorGateway}[rng.Intn(5)],
	}
	if rng.Float64() < 0.12 {
		s.Overload = true
		s.AttackRate *= 6
	}
	// Drawn last so older seeds keep their exact shapes otherwise.
	s.CollateralAlloc = rng.Float64() < 0.35
	// Faults drawn after everything above for the same reason: every
	// pre-fault field of a given seed keeps its exact value.
	if rng.Float64() < 0.30 {
		s.Faults.CtrlLossPct = 1 + 4*rng.Float64()
		s.Faults.Retransmit = true
	}
	if rng.Float64() < 0.15 {
		s.Faults.Flaps = 1 + rng.Intn(2)
	}
	if rng.Float64() < 0.20 {
		s.Faults.CrashVictimGW = true
	}
	// Cluster layer drawn after the faults, again so every pre-cluster
	// field of a given seed keeps its exact value.
	if rng.Float64() < 0.25 {
		s.Cluster.Replicas = 2 + rng.Intn(2)
		s.Cluster.MergeMs = []int{250, 500}[rng.Intn(2)]
		s.Cluster.Replicate = rng.Float64() < 0.8
		s.Cluster.KillReplica = rng.Float64() < 0.5
	}
	return s
}

// name is a compact subtest/display label.
func (s Spec) name() string { return fmt.Sprintf("seed%d", s.Seed) }

// normalized clamps a spec to runnable ranges (hand-written or
// fuzz-mutated specs may carry anything).
func (s Spec) normalized() Spec {
	clamp := func(v *int, lo, hi int) {
		if *v < lo {
			*v = lo
		}
		if *v > hi {
			*v = hi
		}
	}
	clamp(&s.ASes, 2, 200)
	clamp(&s.Tier1, 1, s.ASes)
	clamp(&s.MaxHostsPerAS, 1, 16)
	clamp(&s.DeployPct, 0, 100)
	clamp(&s.Victims, 1, 8)
	clamp(&s.Legit, 0, 32)
	clamp(&s.Steady, 0, 16)
	clamp(&s.Pulsers, 0, 16)
	clamp(&s.Spoofers, 0, 8)
	clamp(&s.ReqFlooders, 0, 8)
	clamp(&s.Exhausters, 0, 8)
	clamp(&s.NonCoop, 0, 16)
	clamp(&s.Shards, 1, 8)
	clamp(&s.Detector, DetectorOracle, DetectorGateway)
	if s.AttackRate < 2.2*detectThreshold {
		s.AttackRate = 2.2 * detectThreshold
	}
	if s.AttackRate > 8e5 {
		s.AttackRate = 8e5
	}
	if s.LegitRate < 1000 {
		s.LegitRate = 1000
	}
	if s.LegitRate > 0.5*detectThreshold {
		s.LegitRate = 0.5 * detectThreshold
	}
	if s.AttackDur < 2*time.Second {
		s.AttackDur = 2 * time.Second
	}
	if s.AttackDur > 20*time.Second {
		s.AttackDur = 20 * time.Second
	}
	if s.Drain < settleTime+2*time.Second {
		s.Drain = settleTime + 2*time.Second
	}
	if s.Faults.CtrlLossPct < 0 {
		s.Faults.CtrlLossPct = 0
	}
	if s.Faults.CtrlLossPct > 20 {
		s.Faults.CtrlLossPct = 20
	}
	clamp(&s.Faults.Flaps, 0, 4)
	clamp(&s.Cluster.Replicas, 0, 4)
	if s.Cluster.Enabled() {
		// The merge interval is never shorter than the detection window:
		// the windowed lower bound composes only across full windows.
		clamp(&s.Cluster.MergeMs, int(detectWindow/time.Millisecond), 2000)
	}
	return s
}

// role locates one host in the generated world.
type role struct {
	as   int
	node topology.NodeID
	addr flow.Addr
}

// attackerRole is one misbehaving host plus its assigned profile.
type attackerRole struct {
	role
	behavior  attack.Behavior
	victim    role
	rate      float64
	on, off   time.Duration
	spoofSrc  flow.Addr
	spoofN    int
	dwell     time.Duration
	compliant bool
	launched  attack.Launched
}

// legitRole is one background sender.
type legitRole struct {
	role
	victim role
	flood  *attack.Flood
}

// world is the fully built scenario, kept for invariant checking.
type world struct {
	spec     Spec
	dep      *aitf.Deployment
	topo     *topology.Topology
	nodes    topology.RandomNodes
	deployed []bool
	nonCoop  map[int]bool

	victims   []role
	attackers []attackerRole
	flooders  []attackerRole
	legit     []legitRole

	attackStop, runEnd sim.Time
}

// Violation is one invariant breach.
type Violation struct {
	Invariant string `json:"invariant"`
	Node      string `json:"node"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.Invariant, v.Node, v.Detail)
}

// Result summarises one scenario run.
type Result struct {
	Spec Spec `json:"spec"`

	// Realized sizes (role assignment is capped by the host supply).
	Hosts       int `json:"hosts"`
	Gateways    int `json:"gateways"`
	NonCoopGWs  int `json:"non_coop_gws"`
	Victims     int `json:"victims"`
	Attackers   int `json:"attackers"`
	Legit       int `json:"legit"`
	ReqFlooders int `json:"req_flooders"`

	Events           int    `json:"events"`
	AttackSent       uint64 `json:"attack_sent"`
	AttackSuppressed uint64 `json:"attack_suppressed"`
	VictimBytes      uint64 `json:"victim_bytes"`
	Disconnects      int    `json:"disconnects"`
	Escalations      int    `json:"escalations"`
	Aggregations     int    `json:"aggregations"`
	// Collateral sums the gateways' covered-address aggregation
	// collateral; CollateralBytes their estimated legit-byte collateral
	// (internal/alloc pricing). Both are what the invariant-2 budget
	// bounds and what the fixed-vs-allocator comparison contrasts.
	Collateral      uint64 `json:"collateral"`
	CollateralBytes uint64 `json:"collateral_bytes"`

	// Detection accuracy accounting (invariant 5). Detections counts
	// attack-detected events; FalsePositives counts those naming a
	// protected legit source (each is also a violation);
	// MissedAttackers counts steady attackers whose flood crossed an
	// AITF gateway yet never triggered detection — accounted, not
	// violated, since the bandwidth bound is what punishes harmful
	// misses.
	Detections      int `json:"detections"`
	FalsePositives  int `json:"false_positives"`
	MissedAttackers int `json:"missed_attackers"`

	// Control-plane reliability accounting (invariant 6). Retransmits
	// and DupDrops sum the gateways' (and hosts') reliable-messenger
	// counters; CtrlLossDrops/DataLossDrops sum the fault-injected
	// per-class link losses across all interfaces; GatewayCrashes
	// counts crash events in the trace.
	CtrlRetransmits uint64 `json:"ctrl_retransmits"`
	CtrlDupDrops    uint64 `json:"ctrl_dup_drops"`
	CtrlLossDrops   uint64 `json:"ctrl_loss_drops"`
	DataLossDrops   uint64 `json:"data_loss_drops"`
	GatewayCrashes  int    `json:"gateway_crashes"`

	// Gateway-cluster accounting (invariant 7), summed over every
	// clustered gateway: merge rounds run and replication bytes
	// exchanged, replica failovers, and the filters the survivors
	// inherited vs lost at each failover. With replication on, lost
	// must be zero. CatchupNanos is deliberately excluded — it is wall
	// clock and would break replay fingerprints.
	ClusterMergeRounds      uint64 `json:"cluster_merge_rounds"`
	ClusterMergeBytes       uint64 `json:"cluster_merge_bytes"`
	ClusterFailovers        uint64 `json:"cluster_failovers"`
	ClusterFiltersInherited uint64 `json:"cluster_filters_inherited"`
	ClusterFiltersLost      uint64 `json:"cluster_filters_lost"`
	ClusterLogLen           int    `json:"cluster_log_len"`

	Violations  []Violation `json:"violations"`
	Fingerprint uint64      `json:"fingerprint"`
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Report renders a one-scenario summary.
func (r *Result) Report() string {
	status := "PASS"
	if r.Failed() {
		status = "FAIL"
	}
	s := fmt.Sprintf(
		"%s seed=%d ases=%d hosts=%d gws=%d(noncoop %d) victims=%d attackers=%d legit=%d reqfl=%d "+
			"events=%d attack=%dB suppressed=%d victim=%dB esc=%d disc=%d det=%d/%d/fp%d fp=%016x",
		status, r.Spec.Seed, r.Spec.ASes, r.Hosts, r.Gateways, r.NonCoopGWs,
		r.Victims, r.Attackers, r.Legit, r.ReqFlooders,
		r.Events, r.AttackSent, r.AttackSuppressed, r.VictimBytes,
		r.Escalations, r.Disconnects, r.Detections, r.MissedAttackers, r.FalsePositives, r.Fingerprint)
	if r.Spec.Faults.Enabled() {
		s += fmt.Sprintf("\n  faults: ctrl-loss=%.1f%% flaps=%d crash=%d retx=%d dup-drops=%d lost-ctrl=%d lost-data=%d",
			r.Spec.Faults.CtrlLossPct, r.Spec.Faults.Flaps, r.GatewayCrashes,
			r.CtrlRetransmits, r.CtrlDupDrops, r.CtrlLossDrops, r.DataLossDrops)
	}
	if r.Spec.Cluster.Enabled() {
		s += fmt.Sprintf("\n  cluster: replicas=%d merges=%d merge-bytes=%d failovers=%d inherited=%d lost=%d log=%d",
			r.Spec.Cluster.Replicas, r.ClusterMergeRounds, r.ClusterMergeBytes,
			r.ClusterFailovers, r.ClusterFiltersInherited, r.ClusterFiltersLost, r.ClusterLogLen)
	}
	for _, v := range r.Violations {
		s += "\n  " + v.String()
	}
	return s
}

// Run generates, deploys, executes, and invariant-checks one scenario.
func Run(spec Spec) *Result {
	w := build(spec.normalized())
	w.dep.Run(w.runEnd)
	return w.check()
}

// build constructs the world for a spec without running it.
func build(s Spec) *world {
	rng := rand.New(rand.NewSource(s.Seed ^ 0x5eedfeed))

	topo, nodes := topology.Random(topology.RandomSpec{
		ASes:               s.ASes,
		Tier1:              s.Tier1,
		MaxHostsPerAS:      s.MaxHostsPerAS,
		InternalRouterProb: 0.3,
		Params: topology.Params{
			AccessDelay:   accessDelay,
			BackboneDelay: backboneDelay,
			TailBandwidth: tailBandwidth,
			CoreBandwidth: 0,
			QueueLen:      64,
		},
	}, rng)

	w := &world{spec: s, topo: topo, nodes: nodes, nonCoop: map[int]bool{}}
	w.deployed = make([]bool, s.ASes)
	for i := range w.deployed {
		w.deployed[i] = i < len(nodes.Tier1) || rng.Intn(100) < s.DeployPct
	}

	// ── Role assignment ──────────────────────────────────────────────
	pool := nodes.HostList()
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	take := func(n int) []role {
		if n > len(pool) {
			n = len(pool)
		}
		out := make([]role, 0, n)
		for _, id := range pool[:n] {
			out = append(out, role{as: nodes.ASOfHost(id), node: id, addr: topo.Nodes[id].Addr})
		}
		pool = pool[n:]
		return out
	}

	w.victims = take(s.Victims)
	for _, v := range w.victims {
		w.deployed[v.as] = true // a victim's own gateway must speak AITF
	}
	pickVictim := func() role { return w.victims[rng.Intn(len(w.victims))] }

	mkAttacker := func(r role, b attack.Behavior, i int) attackerRole {
		a := attackerRole{
			role:      r,
			behavior:  b,
			victim:    pickVictim(),
			rate:      s.AttackRate,
			compliant: rng.Float64() < 0.3,
		}
		switch b {
		case attack.Pulse:
			a.on = 300*time.Millisecond + time.Duration(rng.Int63n(int64(400*time.Millisecond)))
			a.off = timerTtmp + 300*time.Millisecond + time.Duration(rng.Int63n(int64(1200*time.Millisecond)))
		case attack.Spoof:
			a.spoofSrc = flow.MakeAddr(240, 0, byte(i), 1)
			a.spoofN = 1 + rng.Intn(2)
		case attack.TableExhauster:
			// A whole /24 sibling range per exhauster, disjoint from the
			// Spoof ranges (240.0/16) and from every real host. The burst
			// rate is doubled (capped below the tail circuit) and the
			// dwell chosen so each sibling's burst crosses the victim's
			// detector (≥ 2·2.2·threshold ⇒ ≥ ~12 kB per 90 ms, over the
			// 7.5 kB window threshold) while ~Ttmp/dwell ≈ 16 sibling
			// filters overlap — comfortably past the tight table budget.
			a.spoofSrc = flow.MakeAddr(240, 100+byte(i), 0, 1)
			a.spoofN = 24 + rng.Intn(41)
			a.dwell = 90 * time.Millisecond
			a.rate = 2 * s.AttackRate
			if a.rate > 5e5 {
				a.rate = 5e5
			}
		}
		return a
	}
	for i, r := range take(s.Steady) {
		w.attackers = append(w.attackers, mkAttacker(r, attack.Steady, i))
	}
	for i, r := range take(s.Pulsers) {
		w.attackers = append(w.attackers, mkAttacker(r, attack.Pulse, i))
	}
	for i, r := range take(s.Spoofers) {
		w.attackers = append(w.attackers, mkAttacker(r, attack.Spoof, i))
	}
	for i, r := range take(s.Exhausters) {
		w.attackers = append(w.attackers, mkAttacker(r, attack.TableExhauster, i))
	}
	for i, r := range take(s.ReqFlooders) {
		fl := mkAttacker(r, attack.RequestFlooder, i)
		fl.rate = 30 + 40*rng.Float64() // requests/s, well over R1
		w.flooders = append(w.flooders, fl)
	}
	for _, r := range take(s.Legit) {
		w.legit = append(w.legit, legitRole{role: r, victim: pickVictim()})
	}

	// Colluding gateways: the first NonCoop attackers get their nearest
	// deployed non-tier-1 gateway marked non-cooperative.
	marked := 0
	for _, a := range w.attackers {
		if marked >= s.NonCoop {
			break
		}
		for as := a.as; as >= 0; as = nodes.Parent[as] {
			if w.deployed[as] && nodes.Parent[as] >= 0 { // deployed, not tier-1
				if !w.nonCoop[as] {
					w.nonCoop[as] = true
					marked++
				}
				break
			}
		}
	}

	// ── Deployment wiring ────────────────────────────────────────────
	// With exhausters in the army, the victims' gateways get a tight
	// wire-speed budget: enough for the precise filters the rest of the
	// army needs plus a small margin, so the exhauster's sibling spray
	// is what overflows it and forces aggregation — while the
	// aggregation retry keeps the precise filters installable.
	tightCap := 0
	if s.Exhausters > 0 {
		tightCap = 8 + s.Steady + s.Pulsers + 2*s.Spoofers
	}
	victimAS := map[int]bool{}
	for _, v := range w.victims {
		victimAS[v.as] = true
	}
	// With gateway-side detection, every victim's serving gateway (its
	// own AS's border — victim ASes always deploy) defends it.
	detectFor := map[int][]topology.NodeID{}
	if s.Detector == DetectorGateway {
		for _, v := range w.victims {
			detectFor[v.as] = append(detectFor[v.as], v.node)
		}
	}
	spec := aitf.TopologySpec{Topo: topo}
	for as := 0; as < s.ASes; as++ {
		if !w.deployed[as] {
			continue
		}
		gs := aitf.GatewaySpec{
			Node:           nodes.Border[as],
			Provider:       aitf.NoProvider,
			NonCooperative: w.nonCoop[as],
		}
		if tightCap > 0 && victimAS[as] {
			gs.FilterCapacity = tightCap
		}
		gs.DetectFor = detectFor[as]
		for p := nodes.Parent[as]; p >= 0; p = nodes.Parent[p] {
			if w.deployed[p] {
				gs.Provider = nodes.Border[p]
				break
			}
		}
		if nodes.Parent[as] < 0 { // tier-1: peer with the rest of the clique
			for _, t1 := range nodes.Tier1 {
				if t1 != as {
					gs.Peers = append(gs.Peers, nodes.Border[t1])
				}
			}
		}
		if nodes.Internal[as] >= 0 {
			gs.Clients = append(gs.Clients, nodes.Internal[as])
		} else {
			gs.Clients = append(gs.Clients, nodes.Hosts[as]...)
			if s.IngressFiltering {
				gs.IngressHosts = append(gs.IngressHosts, nodes.Hosts[as]...)
			}
		}
		for child := as + 1; child < s.ASes; child++ {
			if nodes.Parent[child] == as {
				gs.Clients = append(gs.Clients, nodes.Border[child])
			}
		}
		spec.Gateways = append(spec.Gateways, gs)
	}

	servingGW := func(as int) topology.NodeID {
		for ; as >= 0; as = nodes.Parent[as] {
			if w.deployed[as] {
				return nodes.Border[as]
			}
		}
		panic("scenario: no deployed gateway on provider chain")
	}
	nonCompliant := map[topology.NodeID]bool{}
	victimNode := map[topology.NodeID]bool{}
	for _, a := range w.attackers {
		nonCompliant[a.node] = !a.compliant
	}
	for _, v := range w.victims {
		victimNode[v.node] = true
	}
	for as := 0; as < s.ASes; as++ {
		for _, h := range nodes.Hosts[as] {
			spec.Hosts = append(spec.Hosts, aitf.HostSpec{
				Node:    h,
				Gateway: servingGW(as),
				// Gateway-detection scenarios model victims as legacy
				// hosts: no detector, no requests of their own.
				Victim:       victimNode[h] && s.Detector != DetectorGateway,
				NonCompliant: nonCompliant[h],
			})
		}
	}

	opt := aitf.DefaultOptions()
	opt.Seed = s.Seed
	opt.Timers = contract.Timers{T: timerT, Ttmp: timerTtmp, Grace: timerGrace, Penalty: timerPenalty}
	switch s.Detector {
	case DetectorSketch:
		// Each victim host gets its own engine with a distinct,
		// seed-derived hash layout (hosts are created in deterministic
		// spec order, so the counter replays identically).
		hostSeed := uint64(s.Seed) * 0x9e3779b97f4a7c15
		n := uint64(0)
		opt.Detector = func() core.Detector {
			n++
			return detect.NewHostDetector(detect.Config{
				ThresholdBps: detectThreshold,
				Window:       detectWindow,
				Seed:         hostSeed + n*0xff51afd7ed558ccd,
			})
		}
	case DetectorGateway:
		opt.Detector = nil // victims are legacy hosts
		opt.GatewayDetect = detect.Config{
			ThresholdBps: detectThreshold,
			Window:       detectWindow,
			Seed:         uint64(s.Seed),
		}
	default:
		opt.Detector = func() core.Detector {
			return attack.NewRateDetector(detectThreshold, detectWindow)
		}
	}
	opt.ShadowMode = aitf.VictimDriven
	if s.GatewayAuto {
		opt.ShadowMode = aitf.GatewayAuto
	}
	opt.BatchDelivery = s.BatchDelivery
	opt.DataplaneShards = s.Shards
	opt.HandshakeTimeout = time.Second
	opt.CollectTrace = true
	// Aggregation is always armed: it only engages under filter-table
	// pressure (which the exhauster army reliably creates), and the
	// invariants below must hold with aggregated prefix filters exactly
	// as they do with precise ones. CollateralAlloc swaps the fixed /24
	// trigger for the collateral-aware allocator on the same shallowest
	// rung, so the invariant-2 budget bound applies identically.
	opt.AggregationPrefixLen = aggShallowest
	if s.CollateralAlloc {
		opt.Allocation = &alloc.Policy{PrefixLens: []uint8{28, 26, aggShallowest}}
	}
	if s.Faults.Retransmit {
		opt.Control = core.ControlConfig{MaxAttempts: ctrlAttempts, RTO: ctrlRTO, Jitter: ctrlJitter}
	}
	if s.Cluster.Enabled() {
		opt.Cluster = cluster.Config{
			Replicas:   s.Cluster.Replicas,
			MergeEvery: sim.Time(s.Cluster.MergeMs) * sim.Time(time.Millisecond),
			HashSeed:   uint64(s.Seed),
			Replicate:  s.Cluster.Replicate,
		}
	}
	w.dep = aitf.DeployTopology(opt, spec)

	// ── Fault schedule ───────────────────────────────────────────────
	// Applied only when configured: a fault-free spec never touches the
	// fault machinery, so its run is byte-identical to pre-fault builds.
	if s.Faults.Enabled() {
		w.dep.Net.SeedFaults(s.Seed ^ 0xfa017)
		if s.Faults.CtrlLossPct > 0 {
			p := s.Faults.CtrlLossPct / 100
			for _, l := range topo.Links {
				a, b := topo.Nodes[l.A], topo.Nodes[l.B]
				if a.Kind == topology.KindBorderRouter && b.Kind == topology.KindBorderRouter {
					w.dep.Net.SetLinkLoss(a.Addr, b.Addr, p, 0)
				}
			}
		}
		if s.Faults.Flaps > 0 {
			// Flap the first victim's uplink (border → provider border)
			// at evenly spaced points inside the attack window. FlapLink
			// no-ops when the victim's AS is tier-1 (no uplink).
			vAS := w.victims[0].as
			if p := nodes.Parent[vAS]; p >= 0 {
				va := topo.Nodes[nodes.Border[vAS]].Addr
				pa := topo.Nodes[nodes.Border[p]].Addr
				step := (time.Second + s.AttackDur) / time.Duration(s.Faults.Flaps+1)
				for i := 1; i <= s.Faults.Flaps; i++ {
					downAt := sim.Time(attackWindowStart) + sim.Time(step)*sim.Time(i)
					w.dep.Net.FlapLink(va, pa, downAt, downAt+sim.Time(flapDowntime))
				}
			}
		}
		if s.Faults.CrashVictimGW {
			// Crash the first victim's serving gateway mid-attack; its
			// durable state (filter table, shadow cache, in-flight
			// handshakes with their original deadlines) restores from the
			// pre-crash snapshot crashDowntime later.
			gw := servingGW(w.victims[0].as)
			crashAt := sim.Time(attackWindowStart+time.Second) + sim.Time(s.AttackDur/2)
			eng := w.dep.Engine
			eng.ScheduleAt(crashAt, func() {
				snap := w.dep.CrashGateway(gw)
				eng.ScheduleAt(crashAt+sim.Time(crashDowntime), func() {
					w.dep.RestoreGateway(gw, snap)
				})
			})
		}
	}

	// ── Replica-death chaos ──────────────────────────────────────────
	// Kill one seed-chosen logical replica of the first victim's
	// serving gateway mid-attack (offset from the whole-gateway crash
	// instant so the two fault kinds compose without colliding). The
	// gateway is fetched at fire time: a crash/restore may have
	// replaced the object by then.
	if s.Cluster.Enabled() && s.Cluster.KillReplica {
		gw := servingGW(w.victims[0].as)
		replica := int(uint64(s.Seed) % uint64(s.Cluster.Replicas))
		killAt := sim.Time(attackWindowStart+time.Second) + sim.Time(s.AttackDur/3)
		w.dep.Engine.ScheduleAt(killAt, func() {
			if g := w.dep.Gateways[gw]; g != nil {
				g.KillReplica(replica)
			}
		})
	}

	// ── Workloads ────────────────────────────────────────────────────
	w.attackStop = sim.Time(attackWindowStart + time.Second + s.AttackDur)
	w.runEnd = w.attackStop + sim.Time(s.Drain)
	wrng := rand.New(rand.NewSource(s.Seed ^ 0x70ffee))

	for i := range w.attackers {
		a := &w.attackers[i]
		start := sim.Time(attackWindowStart) + sim.Time(wrng.Int63n(int64(time.Second)))
		a.launched = attack.Profile{
			Behavior: a.behavior,
			From:     w.dep.Host(a.node),
			Target:   a.victim.addr,
			Rate:     a.rate,
			Start:    start,
			Stop:     w.attackStop,
			On:       sim.Time(a.on),
			Off:      sim.Time(a.off),
			SpoofSrc: a.spoofSrc, SpoofPerPacket: a.spoofN,
			SpoofDwell: sim.Time(a.dwell),
			Jitter:     0.2,
		}.Launch(wrng)
	}
	for i := range w.flooders {
		f := &w.flooders[i]
		start := sim.Time(attackWindowStart) + sim.Time(wrng.Int63n(int64(time.Second)))
		gwNode := servingGW(f.as)
		f.launched = attack.Profile{
			Behavior: attack.RequestFlooder,
			From:     w.dep.Host(f.node),
			Gateway:  w.topo.Nodes[gwNode].Addr,
			Rate:     f.rate,
			Start:    start,
			Stop:     w.attackStop,
		}.Launch(wrng)
	}
	for i := range w.legit {
		l := &w.legit[i]
		l.flood = &attack.Flood{
			From:       w.dep.Host(l.node),
			Dst:        l.victim.addr,
			Rate:       w.spec.LegitRate,
			PacketSize: 1000,
			SrcPort:    uint16(2000 + i),
			DstPort:    80,
			Start:      sim.Time(wrng.Int63n(int64(time.Second))),
			Jitter:     0.3,
			Rng:        wrng,
		}
		l.flood.Launch()
	}
	return w
}
