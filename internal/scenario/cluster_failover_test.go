package scenario

import (
	"testing"
	"time"

	"aitf"
)

// clusterSpec is a property-seed scenario with the gateway-cluster
// layer forced on in its hardest shape: gateway-side detection (the
// cluster's sharded engines do the detecting), three replicas,
// replication armed, and one replica killed mid-attack. The attack
// window is stretched so the kill lands while filters are live.
func clusterSpec(seed int64) Spec {
	s := GenSpec(seed)
	s.Detector = DetectorGateway
	s.Cluster = ClusterSpec{
		Replicas:    3,
		MergeMs:     250,
		Replicate:   true,
		KillReplica: true,
	}
	if s.AttackDur < 5*time.Second {
		s.AttackDur = 5 * time.Second
	}
	return s
}

// TestScenarioClusterFailover is the acceptance suite for the cluster
// layer: across the seeds a replica of the first victim's serving
// gateway is killed mid-attack, and every invariant — including the
// replication-consistency invariant 7 — must hold, with zero filters
// lost to the failover.
func TestScenarioClusterFailover(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		seed := seed
		s := clusterSpec(seed)
		t.Run(s.name(), func(t *testing.T) {
			t.Parallel()
			res := Run(s)
			if res.Failed() {
				t.Fatalf("invariants violated under cluster failover:\n%s", res.Report())
			}
			if res.ClusterFailovers == 0 {
				t.Fatalf("no replica was ever killed:\n%s", res.Report())
			}
			if res.ClusterFiltersLost != 0 {
				t.Fatalf("replicated failover lost %d filters:\n%s", res.ClusterFiltersLost, res.Report())
			}
			if res.ClusterMergeRounds == 0 {
				t.Fatalf("no merge round ever ran:\n%s", res.Report())
			}
		})
	}
}

// TestScenarioClusterFailoverDeterminism: the cluster layer —
// rendezvous assignment, merge rounds, the replica kill, catch-up —
// is seeded virtual-time machinery, so a failover run replays to the
// identical fingerprint (CatchupNanos, the one wall-clock counter, is
// excluded from the fingerprint by construction).
func TestScenarioClusterFailoverDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 17, 41} {
		s := clusterSpec(seed)
		a, b := Run(s), Run(s)
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("seed %d: cluster fingerprints differ: %016x vs %016x\n%s\n%s",
				seed, a.Fingerprint, b.Fingerprint, a.Report(), b.Report())
		}
	}
}

// TestScenarioClusterEngages pins that the machinery demonstrably
// works across the suite, not merely that nothing broke: replicas are
// killed and survivors inherit filters somewhere, merge rounds
// exchange nonzero replication traffic, the replicated log grows, and
// the cluster-detected attacks still get acted on.
func TestScenarioClusterEngages(t *testing.T) {
	var inherited, mergeBytes, logged, acted, killed int
	for seed := int64(1); seed <= 25; seed++ {
		s := clusterSpec(seed)
		w := build(s.normalized())
		w.dep.Run(w.runEnd)
		res := w.check()
		if res.Failed() {
			t.Fatalf("seed %d:\n%s", seed, res.Report())
		}
		if res.ClusterFiltersInherited > 0 {
			inherited++
		}
		if res.ClusterMergeBytes > 0 {
			mergeBytes++
		}
		if res.ClusterLogLen > 0 {
			logged++
		}
		if res.ClusterFailovers > 0 {
			killed++
		}
		if res.AttackSuppressed > 0 || res.Escalations > 0 ||
			w.dep.Log.Count(aitf.EvTempFilterInstalled) > 0 ||
			w.dep.Log.Count(aitf.EvFilterInstalled) > 0 {
			acted++
		}
	}
	if killed < 25 {
		t.Errorf("a replica was killed in only %d/25 cluster runs", killed)
	}
	if inherited < 10 {
		t.Errorf("survivors inherited filters in only %d/25 cluster runs", inherited)
	}
	// A quiet engine's sketch exchange is free (MergeSize counts only
	// live state), so seeds whose armed gateways see little victim-bound
	// traffic legitimately exchange zero bytes.
	if mergeBytes < 15 {
		t.Errorf("merge rounds exchanged bytes in only %d/25 cluster runs", mergeBytes)
	}
	if logged < 20 {
		t.Errorf("the replicated log stayed empty in %d/25 cluster runs", 25-logged)
	}
	if acted < 20 {
		t.Errorf("the protocol acted on the attack in only %d/25 cluster runs", acted)
	}
}

// TestScenarioClusterIndependentLoses is the contrast that justifies
// replication: the same seeds with Replicate off (independent
// replicas) must still satisfy invariants 1–6 — losing filters is a
// robustness gap, not a protocol violation — and must demonstrably
// lose filters at failover somewhere across the suite, which the
// replicated runs above never do.
func TestScenarioClusterIndependentLoses(t *testing.T) {
	lost := 0
	for seed := int64(1); seed <= 25; seed++ {
		s := clusterSpec(seed)
		s.Cluster.Replicate = false
		res := Run(s)
		if res.Failed() {
			t.Fatalf("seed %d:\n%s", seed, res.Report())
		}
		if res.ClusterFiltersLost > 0 {
			lost++
		}
	}
	if lost < 5 {
		t.Errorf("independent replicas lost filters at failover in only %d/25 runs", lost)
	}
}
