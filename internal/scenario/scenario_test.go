package scenario

import (
	"testing"
	"time"
)

// propertySeeds is how many random scenarios the property test runs.
// The acceptance bar for the harness is ≥ 50 seeds under -race.
const propertySeeds = 50

// TestScenarioProperties generates and runs propertySeeds independent
// random scenarios and requires all four protocol invariants to hold
// in each.
func TestScenarioProperties(t *testing.T) {
	for seed := int64(1); seed <= propertySeeds; seed++ {
		seed := seed
		t.Run(GenSpec(seed).name(), func(t *testing.T) {
			t.Parallel()
			res := Run(GenSpec(seed))
			if res.Failed() {
				t.Fatalf("invariants violated:\n%s", res.Report())
			}
			if res.AttackSent == 0 && res.Spec.Steady+res.Spec.Pulsers+res.Spec.Spoofers > 0 {
				t.Fatalf("no attack traffic entered the network:\n%s", res.Report())
			}
			if res.Events == 0 {
				t.Fatal("empty protocol trace — scenario did not exercise AITF")
			}
		})
	}
}

// TestScenarioDeterminism: the same seed replays byte-identically — the
// fingerprint covers the entire event trace and every counter.
func TestScenarioDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 17, 41} {
		a := Run(GenSpec(seed))
		b := Run(GenSpec(seed))
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("seed %d: fingerprints differ: %016x vs %016x\n%s\n%s",
				seed, a.Fingerprint, b.Fingerprint, a.Report(), b.Report())
		}
		if a.Events != b.Events || a.VictimBytes != b.VictimBytes || a.AttackSent != b.AttackSent {
			t.Fatalf("seed %d: summaries differ:\n%s\n%s", seed, a.Report(), b.Report())
		}
	}
	// Different seeds must not (in practice) collide.
	if Run(GenSpec(5)).Fingerprint == Run(GenSpec(6)).Fingerprint {
		t.Fatal("distinct seeds produced identical fingerprints")
	}
}

// TestScenarioExhausterForcesAggregation: filter-table exhausters —
// spoofed /24-sibling bursts against a victim gateway with a tight
// wire-speed budget — must actually drive the gateway into the §IV
// aggregation fallback, and every protocol invariant (legit flows never
// filtered, budgets, escalation termination, the r-bound) must hold
// with the aggregated prefix filters in play exactly as without them.
func TestScenarioExhausterForcesAggregation(t *testing.T) {
	aggregated := 0
	for seed := int64(1); seed <= 12; seed++ {
		s := GenSpec(seed)
		s.Exhausters = 1
		s.AttackDur = 5 * time.Second
		res := Run(s)
		if res.Failed() {
			t.Fatalf("seed %d: invariants violated with exhauster army:\n%s", seed, res.Report())
		}
		if res.Aggregations > 0 {
			aggregated++
		}
	}
	// Not every topology routes the spray through a pressured gateway
	// (ingress filtering, undeployed ASes), but across a dozen seeds
	// the exhauster must demonstrably force aggregation most of the
	// time — otherwise it is not exhausting anything.
	if aggregated < 6 {
		t.Fatalf("aggregation engaged in only %d/12 exhauster scenarios", aggregated)
	}
}

// TestScenarioExercisesAdversaries: across the property seeds, every
// adversary class and resolution path actually occurs somewhere —
// guarding against a generator that silently stops producing attacks.
func TestScenarioExercisesAdversaries(t *testing.T) {
	var sawEsc, sawDisc, sawNonCoop, sawSuppressed bool
	for seed := int64(1); seed <= 25; seed++ {
		res := Run(GenSpec(seed))
		if res.Failed() {
			t.Fatalf("seed %d:\n%s", seed, res.Report())
		}
		sawEsc = sawEsc || res.Escalations > 0
		sawDisc = sawDisc || res.Disconnects > 0
		sawNonCoop = sawNonCoop || res.NonCoopGWs > 0
		sawSuppressed = sawSuppressed || res.AttackSuppressed > 0
	}
	if !sawEsc {
		t.Error("no scenario escalated")
	}
	if !sawDisc {
		t.Error("no scenario disconnected a non-cooperator")
	}
	if !sawNonCoop {
		t.Error("no scenario deployed a colluding gateway")
	}
	if !sawSuppressed {
		t.Error("no compliant attacker ever honoured a stop order")
	}
}
