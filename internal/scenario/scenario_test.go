package scenario

import (
	"testing"
	"time"

	"aitf"
	"aitf/internal/flow"
	"aitf/internal/sim"
)

// propertySeeds is how many random scenarios the property test runs.
// The acceptance bar for the harness is ≥ 50 seeds under -race.
const propertySeeds = 50

// TestScenarioProperties generates and runs propertySeeds independent
// random scenarios and requires all four protocol invariants to hold
// in each.
func TestScenarioProperties(t *testing.T) {
	for seed := int64(1); seed <= propertySeeds; seed++ {
		seed := seed
		t.Run(GenSpec(seed).name(), func(t *testing.T) {
			t.Parallel()
			res := Run(GenSpec(seed))
			if res.Failed() {
				t.Fatalf("invariants violated:\n%s", res.Report())
			}
			if res.AttackSent == 0 && res.Spec.Steady+res.Spec.Pulsers+res.Spec.Spoofers > 0 {
				t.Fatalf("no attack traffic entered the network:\n%s", res.Report())
			}
			if res.Events == 0 {
				t.Fatal("empty protocol trace — scenario did not exercise AITF")
			}
		})
	}
}

// TestScenarioDeterminism: the same seed replays byte-identically — the
// fingerprint covers the entire event trace and every counter.
func TestScenarioDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 17, 41} {
		a := Run(GenSpec(seed))
		b := Run(GenSpec(seed))
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("seed %d: fingerprints differ: %016x vs %016x\n%s\n%s",
				seed, a.Fingerprint, b.Fingerprint, a.Report(), b.Report())
		}
		if a.Events != b.Events || a.VictimBytes != b.VictimBytes || a.AttackSent != b.AttackSent {
			t.Fatalf("seed %d: summaries differ:\n%s\n%s", seed, a.Report(), b.Report())
		}
	}
	// Different seeds must not (in practice) collide.
	if Run(GenSpec(5)).Fingerprint == Run(GenSpec(6)).Fingerprint {
		t.Fatal("distinct seeds produced identical fingerprints")
	}
}

// TestScenarioExhausterForcesAggregation: filter-table exhausters —
// spoofed /24-sibling bursts against a victim gateway with a tight
// wire-speed budget — must actually drive the gateway into the §IV
// aggregation fallback, and every protocol invariant (legit flows never
// filtered, budgets, escalation termination, the r-bound) must hold
// with the aggregated prefix filters in play exactly as without them.
func TestScenarioExhausterForcesAggregation(t *testing.T) {
	aggregated := 0
	for seed := int64(1); seed <= 12; seed++ {
		s := GenSpec(seed)
		s.Exhausters = 1
		s.AttackDur = 5 * time.Second
		res := Run(s)
		if res.Failed() {
			t.Fatalf("seed %d: invariants violated with exhauster army:\n%s", seed, res.Report())
		}
		if res.Aggregations > 0 {
			aggregated++
		}
	}
	// Not every topology routes the spray through a pressured gateway
	// (ingress filtering, undeployed ASes), but across a dozen seeds
	// the exhauster must demonstrably force aggregation most of the
	// time — otherwise it is not exhausting anything.
	if aggregated < 6 {
		t.Fatalf("aggregation engaged in only %d/12 exhauster scenarios", aggregated)
	}
}

// TestScenarioAllocatorReducesCollateral is the same-seed
// fixed-vs-allocator contrast at scenario scale: each exhauster
// scenario runs twice, once with the fixed /24 fallback and once with
// the collateral-aware allocator, on an otherwise identical spec. Both
// must satisfy every invariant; across the seeds where both engaged
// aggregation, the allocator must accrue strictly less covered-address
// collateral in total, because it covers the spoofed sibling bursts
// with /28–/26 picks instead of blanket /24s.
func TestScenarioAllocatorReducesCollateral(t *testing.T) {
	var fixedColl, allocColl uint64
	both := 0
	for seed := int64(1); seed <= 12; seed++ {
		s := GenSpec(seed)
		s.Exhausters = 1
		s.AttackDur = 5 * time.Second
		s.CollateralAlloc = false
		rf := Run(s)
		if rf.Failed() {
			t.Fatalf("seed %d fixed: invariants violated:\n%s", seed, rf.Report())
		}
		s.CollateralAlloc = true
		ra := Run(s)
		if ra.Failed() {
			t.Fatalf("seed %d allocator: invariants violated:\n%s", seed, ra.Report())
		}
		if rf.Aggregations > 0 && ra.Aggregations > 0 {
			both++
			fixedColl += rf.Collateral
			allocColl += ra.Collateral
		}
	}
	if both < 4 {
		t.Fatalf("both policies aggregated in only %d/12 exhauster scenarios", both)
	}
	if allocColl >= fixedColl {
		t.Fatalf("allocator covered-address collateral %d not below fixed %d across %d seeds",
			allocColl, fixedColl, both)
	}
}

// TestScenarioAggregateReliefSplits: the full aggregate → relief →
// split-back cycle occurs under the scenario generator too, not only in
// hand-built deployments — the drain window outlives the exhauster
// burst, so pressured gateways must demonstrably deaggregate (and the
// invariants, including the final filter-table sweep of invariant 1,
// hold through the cycle).
func TestScenarioAggregateReliefSplits(t *testing.T) {
	splits := 0
	for seed := int64(1); seed <= 12; seed++ {
		s := GenSpec(seed)
		s.Exhausters = 1
		s.AttackDur = 5 * time.Second
		w := build(s.normalized())
		w.dep.Run(w.runEnd)
		res := w.check()
		if res.Failed() {
			t.Fatalf("seed %d: invariants violated:\n%s", seed, res.Report())
		}
		if res.Aggregations > 0 && w.dep.Log.Count(aitf.EvDeaggregated) > 0 {
			splits++
		}
	}
	if splits < 3 {
		t.Fatalf("aggregate→relief→split cycle completed in only %d/12 exhauster scenarios", splits)
	}
}

// TestScenarioExercisesAdversaries: across the property seeds, every
// adversary class and resolution path actually occurs somewhere —
// guarding against a generator that silently stops producing attacks.
func TestScenarioExercisesAdversaries(t *testing.T) {
	var sawEsc, sawDisc, sawNonCoop, sawSuppressed bool
	for seed := int64(1); seed <= 25; seed++ {
		res := Run(GenSpec(seed))
		if res.Failed() {
			t.Fatalf("seed %d:\n%s", seed, res.Report())
		}
		sawEsc = sawEsc || res.Escalations > 0
		sawDisc = sawDisc || res.Disconnects > 0
		sawNonCoop = sawNonCoop || res.NonCoopGWs > 0
		sawSuppressed = sawSuppressed || res.AttackSuppressed > 0
	}
	if !sawEsc {
		t.Error("no scenario escalated")
	}
	if !sawDisc {
		t.Error("no scenario disconnected a non-cooperator")
	}
	if !sawNonCoop {
		t.Error("no scenario deployed a colluding gateway")
	}
	if !sawSuppressed {
		t.Error("no compliant attacker ever honoured a stop order")
	}
}

// TestScenarioSketchDetectorProperties is the property suite with the
// oracle swapped out wholesale: every one of the 50 seeds runs with
// the real sketch-based detection engine on its victim hosts, and all
// protocol invariants — including the new false-positive bound
// (invariant 5) — must hold with detection latency now emergent
// rather than assumed.
func TestScenarioSketchDetectorProperties(t *testing.T) {
	for seed := int64(1); seed <= propertySeeds; seed++ {
		seed := seed
		s := GenSpec(seed)
		s.Detector = DetectorSketch
		t.Run(s.name(), func(t *testing.T) {
			t.Parallel()
			res := Run(s)
			if res.Failed() {
				t.Fatalf("invariants violated under sketch detection:\n%s", res.Report())
			}
			if res.FalsePositives != 0 {
				t.Fatalf("sketch detector framed %d legit flows:\n%s", res.FalsePositives, res.Report())
			}
		})
	}
}

// TestScenarioGatewayDetectorProperties forces gateway-side detection
// (victims as legacy hosts, their gateways detecting on their behalf)
// across 25 seeds: all invariants hold, and the gateways demonstrably
// do the detecting — attack-detected events exist while the legacy
// victims file zero requests themselves.
func TestScenarioGatewayDetectorProperties(t *testing.T) {
	detectedSomewhere := 0
	for seed := int64(1); seed <= 25; seed++ {
		s := GenSpec(seed)
		s.Detector = DetectorGateway
		res := Run(s)
		if res.Failed() {
			t.Fatalf("seed %d: invariants violated under gateway detection:\n%s", seed, res.Report())
		}
		if res.Detections > 0 {
			detectedSomewhere++
		}
	}
	if detectedSomewhere < 15 {
		t.Fatalf("gateways detected attacks in only %d/25 scenarios", detectedSomewhere)
	}
}

// TestScenarioSketchDeterministic: the sketch engines are seeded, so a
// sketch-detected scenario replays to the identical fingerprint.
func TestScenarioSketchDeterministic(t *testing.T) {
	for _, kind := range []int{DetectorSketch, DetectorGateway} {
		for _, seed := range []int64{9, 27} {
			s := GenSpec(seed)
			s.Detector = kind
			a, b := Run(s), Run(s)
			if a.Fingerprint != b.Fingerprint {
				t.Fatalf("detector %d seed %d: fingerprints differ: %016x vs %016x",
					kind, seed, a.Fingerprint, b.Fingerprint)
			}
		}
	}
}

// TestScenarioSketchEmergentTd pins the acceptance criterion: with the
// sketch detector, detection latency Td is an emergent, non-zero
// output, and the paper's r ≈ n(Td+Tr)/T effective-bandwidth bound
// still holds when evaluated with the *measured* Td instead of an
// assumed one.
func TestScenarioSketchEmergentTd(t *testing.T) {
	s := GenSpec(4)
	s.Detector = DetectorSketch
	s.Steady, s.Pulsers, s.Spoofers, s.ReqFlooders, s.Exhausters = 1, 0, 0, 0, 0
	s.Overload = false
	w := build(s.normalized())
	w.dep.Run(w.runEnd)
	res := w.check()
	if res.Failed() {
		t.Fatalf("invariants violated:\n%s", res.Report())
	}
	if len(w.attackers) != 1 {
		t.Fatalf("expected one steady attacker, got %d", len(w.attackers))
	}
	a := w.attackers[0]
	if !w.pathCrossesGateway(a.node, a.victim.node) {
		t.Skip("attacker and victim share a LAN in this seed; pick another")
	}

	// Measured Td: first detection of the attack flow minus its start.
	label := flow.PairLabel(a.addr, a.victim.addr).Key()
	var detAt sim.Time
	for _, e := range w.dep.Log.OfKind(aitf.EvAttackDetected) {
		if e.Flow.Key() == label {
			detAt = e.T
			break
		}
	}
	if detAt == 0 {
		t.Fatalf("steady attacker never detected:\n%s", res.Report())
	}
	td := detAt - a.launched.Profile.Start
	if td <= 0 {
		t.Fatalf("emergent Td = %v, want > 0 (detection cannot be instantaneous)", td)
	}
	if td > sim.Time(700*time.Millisecond) {
		t.Fatalf("emergent Td = %v, far beyond a window + crossing time", td)
	}

	// The r-bound, evaluated with the measured Td: the victim's bytes
	// from this flow stay within n leaks of (Td+Tr)-worth of traffic.
	n := 1
	for _, as := range w.nodes.ASPath(a.as, a.victim.as) {
		if w.deployed[as] && w.nonCoop[as] {
			n++
		}
	}
	m := w.dep.Host(a.victim.node).PerSource[a.addr]
	if m == nil {
		t.Fatal("attack flow never reached the victim at all")
	}
	const slack, leakWin, floorB = 2.0, 0.30, 20_000
	allowed := slack*a.rate*(td.Seconds()+float64(n+1)*leakWin) + floorB
	if float64(m.Bytes) > allowed {
		t.Fatalf("measured Td=%v: flow delivered %d B, bound with measured Td allows %.0f B",
			td, m.Bytes, allowed)
	}
	t.Logf("emergent Td = %v, delivered %d B, bound %.0f B", td, m.Bytes, allowed)
}
