package scenario

import (
	"testing"
	"time"
)

// fuzzSpec maps raw fuzz input onto a small, always-runnable scenario
// shape: the fuzzer controls the seed (and thus topology, roles and
// schedules) plus the army composition and feature flags directly.
func fuzzSpec(seed int64, ases, army, flags uint8) Spec {
	s := Spec{
		Seed:          seed,
		ASes:          2 + int(ases%8),
		Tier1:         1 + int(ases>>4)%3,
		MaxHostsPerAS: 1 + int(army>>6),
		DeployPct:     int(flags>>1) * 2,
		Victims:       1,
		Legit:         int(army % 4),
		Steady:        int(army % 3),
		Pulsers:       int(army>>2) % 2,
		Spoofers:      int(army>>4) % 2,
		ReqFlooders:   int(army>>5) % 2,
		Exhausters:    int(flags >> 7),
		NonCoop:       int(flags % 3),
		AttackRate:    80_000,
		LegitRate:     6_000,
		AttackDur:     2*time.Second + time.Duration(flags%3)*time.Second,

		IngressFiltering: flags&8 != 0,
		GatewayAuto:      flags&16 != 0,
		BatchDelivery:    flags&32 != 0,
		Shards:           1 + int(flags%4),
		Detector:         int(ases>>6) % 3,
		CollateralAlloc:  ases&8 != 0,
	}
	if flags&64 != 0 {
		s.Overload = true
		s.AttackRate = 480_000
	}
	// The seed's high byte drives the hostile-network layer, so the
	// existing 4-arg corpus keeps working and the fuzzer can reach
	// every fault combination by mutating the seed alone.
	fb := uint8(uint64(seed) >> 56)
	s.Faults = FaultSpec{
		CtrlLossPct:   float64(fb & 7),
		Flaps:         int(fb>>3) & 3,
		CrashVictimGW: fb&32 != 0,
		Retransmit:    fb&64 != 0,
	}
	// Seed high-byte bit 7 arms the gateway-cluster layer; its shape
	// rides on bits the other fields already consume (independence is
	// not needed for coverage, only reachability).
	if fb&128 != 0 {
		s.Cluster = ClusterSpec{
			Replicas:    2 + int(ases%2),
			MergeMs:     250 + 250*int(flags%2),
			Replicate:   army&2 == 0,
			KillReplica: army&1 == 0,
		}
	}
	return s // Run normalizes the rest (Drain, clamps)
}

// FuzzScenario treats the fuzz input as a scenario seed and shape and
// requires every protocol invariant to hold. Run with
//
//	go test -fuzz=FuzzScenario -fuzztime=30s ./internal/scenario
//
// A crasher's input reduces to a Spec that cmd/aitf-scenario can
// replay and minimize (print it with t.Log below, or re-derive it via
// fuzzSpec from the corpus entry).
func FuzzScenario(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(0b0110_0110), uint8(0))
	f.Add(int64(42), uint8(250), uint8(0b1011_0101), uint8(0b0111_1111))
	f.Add(int64(-7), uint8(3), uint8(1), uint8(64))
	f.Add(int64(1<<40), uint8(0), uint8(0), uint8(255))
	// Filter-table exhauster armies (flags bit 7) with and without a
	// mixed background army.
	f.Add(int64(11), uint8(6), uint8(0b0001_0110), uint8(0b1000_0000))
	f.Add(int64(23), uint8(9), uint8(0), uint8(0b1010_1001))
	// Sketch-detector scenarios (ases bit 6) and gateway-side
	// detection defending legacy victims (ases bit 7).
	f.Add(int64(31), uint8(0b0100_0110), uint8(0b0110_0110), uint8(0))
	f.Add(int64(37), uint8(0b1000_0101), uint8(0b0001_0111), uint8(0b1010_0001))
	// Collateral-aware allocation (ases bit 3), with and without the
	// exhauster pressure (flags bit 7) that makes it engage.
	f.Add(int64(51), uint8(0b0000_1110), uint8(0b0001_0110), uint8(0b1000_0000))
	f.Add(int64(59), uint8(0b0100_1101), uint8(0b0110_0011), uint8(0b1010_0001))
	// Hostile-network entries (seed high byte = fault bits): control
	// loss with retransmission, a victim-gateway crash mid-attack, and
	// the full stack — loss + flaps + crash — at once.
	f.Add(int64(0b0100_0011)<<56|67, uint8(6), uint8(0b0110_0110), uint8(0))
	f.Add(int64(0b0010_0000)<<56|71, uint8(9), uint8(0b0001_0111), uint8(0b0010_1001))
	f.Add(int64(0b0110_1101)<<56|79, uint8(5), uint8(0b1011_0101), uint8(0b0000_0001))
	// Gateway-cluster entries (seed high-byte bit 7): a replicated
	// cluster with a replica kill under gateway-side detection, the
	// cluster riding the full hostile-network stack at once, and the
	// independent-gateways contrast (replication off) with a kill.
	f.Add(int64(-1<<63|89), uint8(0b1000_0110), uint8(0b0110_0100), uint8(0))
	f.Add(int64(-1<<63|0b0110_1101<<56|97), uint8(5), uint8(0b1011_0001), uint8(0b0000_0001))
	f.Add(int64(-1<<63|101), uint8(0b1000_0011), uint8(0b0000_0110), uint8(0b0000_0010))
	f.Fuzz(func(t *testing.T, seed int64, ases, army, flags uint8) {
		spec := fuzzSpec(seed, ases, army, flags)
		res := Run(spec)
		if res.Failed() {
			t.Fatalf("invariants violated for %+v:\n%s", spec, res.Report())
		}
	})
}
