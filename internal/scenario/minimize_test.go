package scenario

import (
	"testing"
	"time"
)

// TestMinimizeShrinksToMinimalFailure drives the minimizer with a
// synthetic failure predicate and checks it reaches the smallest spec
// that still satisfies it, zeroing everything irrelevant.
func TestMinimizeShrinksToMinimalFailure(t *testing.T) {
	start := GenSpec(1)
	start.ASes = 12
	start.Steady = 2
	start.Pulsers = 2
	start.Legit = 5

	failing := func(s Spec) bool { return s.Steady >= 1 && s.ASes >= 4 }
	got := Minimize(start, failing)

	if !failing(got) {
		t.Fatalf("minimized spec no longer fails: %+v", got)
	}
	if got.ASes != 4 {
		t.Errorf("ASes = %d, want 4", got.ASes)
	}
	if got.Steady != 1 {
		t.Errorf("Steady = %d, want 1", got.Steady)
	}
	if got.Pulsers != 0 || got.Legit != 0 || got.Spoofers != 0 || got.ReqFlooders != 0 {
		t.Errorf("irrelevant adversaries not shrunk: %+v", got)
	}
	if got.AttackDur != 2*time.Second {
		t.Errorf("AttackDur = %v, want the 2s floor", got.AttackDur)
	}
}

// TestMinimizeKeepsPassingSpec: a spec that does not fail is returned
// unchanged (after normalization).
func TestMinimizeKeepsPassingSpec(t *testing.T) {
	start := GenSpec(2).normalized()
	got := Minimize(start, func(Spec) bool { return false })
	if got != start {
		t.Fatalf("minimizer mutated a passing spec: %+v vs %+v", got, start)
	}
}

// TestMinimizeRealRun smoke-checks the minimizer over the real Run
// path: with a predicate keyed on an actual run property (any
// escalation observed), it must converge to a still-escalating but
// smaller scenario.
func TestMinimizeRealRun(t *testing.T) {
	seed := int64(0)
	var start Spec
	for s := int64(1); s <= 20; s++ {
		if r := Run(GenSpec(s)); r.Escalations > 0 {
			seed, start = s, GenSpec(s)
			break
		}
	}
	if seed == 0 {
		t.Fatal("no escalating scenario among the first 20 seeds")
	}
	failing := func(s Spec) bool { return Run(s).Escalations > 0 }
	got := Minimize(start, failing)
	if !failing(got) {
		t.Fatal("minimized scenario no longer escalates")
	}
	if got.ASes > start.ASes {
		t.Fatalf("minimizer grew the scenario: %+v", got)
	}
}
