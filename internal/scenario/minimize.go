package scenario

import "time"

// Minimize shrinks a failing spec while the predicate keeps reporting
// failure, and returns the smallest still-failing spec found. The
// predicate is typically `func(s Spec) bool { return Run(s).Failed() }`;
// tests inject synthetic predicates. Shrinking is deterministic: each
// pass tries a fixed candidate list and greedily adopts the first
// candidate that still fails, until a fixed point.
func Minimize(spec Spec, failing func(Spec) bool) Spec {
	cur := spec.normalized()
	if !failing(cur) {
		return cur
	}
	for pass := 0; pass < 64; pass++ {
		improved := false
		for _, cand := range shrinkCandidates(cur) {
			cand = cand.normalized()
			if cand == cur {
				continue
			}
			if failing(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			return cur
		}
	}
	return cur
}

// shrinkCandidates lists one-step reductions of a spec, most aggressive
// first so the greedy loop converges quickly.
func shrinkCandidates(s Spec) []Spec {
	var out []Spec
	add := func(mut func(*Spec)) {
		c := s
		mut(&c)
		out = append(out, c)
	}
	add(func(c *Spec) { c.ASes /= 2 })
	add(func(c *Spec) { c.ASes-- })
	add(func(c *Spec) { c.MaxHostsPerAS = 1 })
	add(func(c *Spec) { c.Victims = 1 })
	add(func(c *Spec) { c.Legit /= 2 })
	add(func(c *Spec) { c.Legit = 0 })
	add(func(c *Spec) { c.Steady /= 2 })
	add(func(c *Spec) { c.Pulsers = 0 })
	add(func(c *Spec) { c.Pulsers /= 2 })
	add(func(c *Spec) { c.Spoofers = 0 })
	add(func(c *Spec) { c.ReqFlooders = 0 })
	add(func(c *Spec) { c.NonCoop = 0 })
	add(func(c *Spec) { c.Overload = false })
	// Fault reductions: drop the whole hostile-network layer first,
	// then each fault dimension separately, so a crasher that does not
	// need faults minimizes to a pristine-network spec.
	add(func(c *Spec) { c.Faults = FaultSpec{} })
	add(func(c *Spec) { c.Faults.CtrlLossPct = 0 })
	add(func(c *Spec) { c.Faults.Flaps = 0 })
	add(func(c *Spec) { c.Faults.CrashVictimGW = false })
	add(func(c *Spec) { c.Faults.Retransmit = false })
	// Cluster reductions — only when the layer is on, so shrinking never
	// grows a cluster into a cluster-free spec: drop it whole, then the
	// replica kill, then down to the minimal two replicas.
	if s.Cluster.Enabled() {
		add(func(c *Spec) { c.Cluster = ClusterSpec{} })
		add(func(c *Spec) { c.Cluster.KillReplica = false })
		add(func(c *Spec) { c.Cluster.Replicas = 2 })
	}
	add(func(c *Spec) { c.IngressFiltering = false })
	add(func(c *Spec) { c.GatewayAuto = false })
	add(func(c *Spec) { c.BatchDelivery = false })
	add(func(c *Spec) { c.Detector = DetectorOracle })
	add(func(c *Spec) { c.Shards = 1 })
	add(func(c *Spec) { c.DeployPct = 100 })
	add(func(c *Spec) { c.AttackDur /= 2 })
	add(func(c *Spec) { c.AttackDur = 2 * time.Second })
	return out
}
