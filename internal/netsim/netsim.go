// Package netsim is the discrete-event network emulator: nodes joined
// by links with propagation delay, serialization (bandwidth) delay, and
// drop-tail output queues, all driven by the sim engine's virtual time.
//
// netsim knows nothing about AITF; protocol behaviour is injected per
// node through the Handler interface (implemented by internal/core for
// AITF nodes and by internal/pushback for the baseline).
package netsim

import (
	"fmt"
	"math/rand"

	"aitf/internal/flow"
	"aitf/internal/packet"
	"aitf/internal/sim"
	"aitf/internal/topology"
)

// DefaultQueueLen is the output queue capacity used when a link spec
// leaves QueueLen zero.
const DefaultQueueLen = 64

// Handler receives every packet delivered to a node. from is the
// interface the packet arrived on; it is nil for packets the node
// originates via Deliver (used only in tests).
type Handler interface {
	Receive(n *Node, p *packet.Packet, from *Iface)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(n *Node, p *packet.Packet, from *Iface)

// Receive implements Handler.
func (f HandlerFunc) Receive(n *Node, p *packet.Packet, from *Iface) { f(n, p, from) }

// BatchHandler is an optional Handler extension. When a node has batch
// delivery enabled (SetBatchDelivery) and its handler implements
// BatchHandler, packets arriving at the same virtual instant from the
// same interface are delivered together, letting the handler amortize
// per-packet costs (e.g. dataplane.Engine's batch classification).
type BatchHandler interface {
	Handler
	ReceiveBatch(n *Node, ps []*packet.Packet, from *Iface)
}

// IfaceStats counts per-direction link activity.
type IfaceStats struct {
	TxPackets uint64
	TxBytes   uint64
	RxPackets uint64
	RxBytes   uint64
	// QueueDrops counts packets dropped because the output queue was
	// full — congestion losses, the thing a DoS attack manufactures.
	// CtrlQueueDrops/DataQueueDrops split the same total by packet
	// class, so experiments can separate lost signaling from the attack
	// congestion that caused it.
	QueueDrops     uint64
	CtrlQueueDrops uint64
	DataQueueDrops uint64
	// LossDrops counts fault-induced losses — random link loss and
	// sends into an administratively downed link (see faults.go) —
	// again split by packet class. Disjoint from QueueDrops.
	LossDrops     uint64
	CtrlLossDrops uint64
	DataLossDrops uint64
}

// Iface is one node's attachment to one link, in one direction. Sending
// on an Iface transmits toward its neighbor.
type Iface struct {
	owner    *Node
	neighbor *Node

	delay     sim.Time
	bandwidth float64 // bytes/s; 0 = infinite
	queueCap  int

	busyUntil sim.Time
	queued    int

	// Fault-injection state (faults.go): per-class random loss
	// probability, administrative link state, and a crash epoch that
	// invalidates transmissions still queued when the owner crashes.
	ctrlLoss, dataLoss float64
	down               bool
	epoch              uint32
	crashedAt          sim.Time

	stats IfaceStats
}

// Neighbor returns the node at the far end.
func (i *Iface) Neighbor() *Node { return i.neighbor }

// Owner returns the node this interface belongs to.
func (i *Iface) Owner() *Node { return i.owner }

// Stats returns a copy of the interface counters.
func (i *Iface) Stats() IfaceStats { return i.stats }

// QueueLen returns the packets currently waiting for transmission.
func (i *Iface) QueueLen() int { return i.queued }

// Send transmits p toward the neighbor, modelling serialization delay,
// propagation delay, and a drop-tail queue. It reports whether the
// packet was accepted; on a false return the packet was dropped at the
// queue and released to the packet pool, so the caller must not retain
// it.
func (i *Iface) Send(p *packet.Packet) bool {
	if i.down || i.owner.down {
		// Downed link (or crashed owner): the packet never reaches the
		// wire.
		i.dropFault(p)
		return false
	}
	if loss := i.lossFor(p); loss > 0 && i.owner.net.faultRng.Float64() < loss {
		i.dropFault(p)
		return false
	}
	eng := i.owner.net.eng
	now := eng.Now()
	size := p.WireSize()

	var txdur sim.Time
	if i.bandwidth > 0 {
		txdur = sim.Time(float64(size) / i.bandwidth * 1e9)
	}
	start := now
	if i.busyUntil > now {
		// Link busy: the packet must queue.
		if i.queued >= i.queueCap {
			i.stats.QueueDrops++
			if p.IsControl() {
				i.stats.CtrlQueueDrops++
			} else {
				i.stats.DataQueueDrops++
			}
			p.Release() // congestion loss: the packet is dead, recycle it
			return false
		}
		start = i.busyUntil
		i.queued++
		ep := i.epoch
		eng.ScheduleAt(start, func() {
			if i.epoch == ep {
				i.queued--
			}
		})
	}
	i.busyUntil = start + txdur
	i.stats.TxPackets++
	i.stats.TxBytes += uint64(size)

	dst := i.neighbor
	back := dst.IfaceTo(i.owner.Addr())
	arrive := start + txdur + i.delay
	ep := i.epoch
	eng.ScheduleAt(arrive, func() {
		if i.epoch != ep && start > i.crashedAt {
			// The owner crashed while this packet was still sitting in
			// its output queue; it never made it onto the wire. Packets
			// that had already begun serializing (start <= crash time)
			// are on the wire and survive.
			i.owner.CrashDrops++
			p.Release()
			return
		}
		if back != nil {
			back.stats.RxPackets++
			back.stats.RxBytes += uint64(size)
		}
		dst.deliver(p, back)
	})
	return true
}

// Node is a running network element.
//
// aitf:packetowner — a node holds in-flight pooled packets in its
// batch-delivery buffers (pending/flushing/batchBuf) between the
// enqueue instant and the flush that hands them to the handler.
type Node struct {
	net  *Network
	info topology.Node

	ifaces  []*Iface
	byPeer  map[flow.Addr]*Iface
	routes  map[flow.Addr]*Iface
	handler Handler

	// Batch-delivery state (see SetBatchDelivery): arrivals at the same
	// virtual instant are buffered and flushed together.
	coalesce   bool
	pending    []arrival
	flushing   []arrival // second buffer, swapped with pending per flush
	flushArmed bool
	batchBuf   []*packet.Packet

	// RoutingDrops counts packets dropped for TTL expiry or no route.
	RoutingDrops uint64
	// CrashDrops counts packets lost to a node crash: queued
	// transmissions and buffered arrivals wiped by Crash, plus packets
	// arriving while the node is down.
	CrashDrops uint64

	// down marks a crashed node (see faults.go); a down node neither
	// sends nor receives.
	down bool
}

// arrival is one buffered packet delivery.
//
// aitf:packetowner — an arrival briefly owns its packet between
// enqueue and flush; Node's batch-delivery buffers hold arrivals.
type arrival struct {
	p    *packet.Packet
	from *Iface
}

// ID returns the node's topology ID.
func (n *Node) ID() topology.NodeID { return n.info.ID }

// Addr returns the node's network address.
func (n *Node) Addr() flow.Addr { return n.info.Addr }

// Name returns the node's topology name.
func (n *Node) Name() string { return n.info.Name }

// Kind returns the node's topology kind.
func (n *Node) Kind() topology.Kind { return n.info.Kind }

// AS returns the node's autonomous domain.
func (n *Node) AS() int { return n.info.AS }

// Net returns the owning network.
func (n *Node) Net() *Network { return n.net }

// Engine returns the simulation engine, for scheduling protocol timers.
func (n *Node) Engine() *sim.Engine { return n.net.eng }

// Ifaces lists the node's interfaces in topology order.
func (n *Node) Ifaces() []*Iface { return n.ifaces }

// IfaceTo returns the interface whose neighbor has the given address.
func (n *Node) IfaceTo(neighbor flow.Addr) *Iface { return n.byPeer[neighbor] }

// NextHop returns the interface on the shortest path toward dst, or nil
// if dst is unknown or is the node itself.
func (n *Node) NextHop(dst flow.Addr) *Iface { return n.routes[dst] }

// SetHandler installs the node's packet handler.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// Handler returns the node's current handler.
func (n *Node) Handler() Handler { return n.handler }

// SetBatchDelivery toggles arrival coalescing: packets arriving at the
// same virtual instant are buffered and handed to the handler together
// (via BatchHandler when implemented, in arrival order otherwise one by
// one). Delivery still happens at the same virtual time; only the
// position within same-instant event ties shifts, which is why the
// feature is opt-in per node.
func (n *Node) SetBatchDelivery(on bool) { n.coalesce = on }

// deliver hands an arriving packet to the handler, possibly buffering
// it for a same-instant batch flush.
func (n *Node) deliver(p *packet.Packet, from *Iface) {
	if n.down {
		n.CrashDrops++
		p.Release()
		return
	}
	if !n.coalesce {
		n.handler.Receive(n, p, from)
		return
	}
	n.pending = append(n.pending, arrival{p, from})
	if !n.flushArmed {
		n.flushArmed = true
		n.net.eng.ScheduleAt(n.net.eng.Now(), n.flushPending)
	}
}

// flushPending delivers everything buffered for this instant, grouping
// contiguous same-interface runs into batches. Arrivals triggered while
// flushing land in the (swapped) pending buffer and arm a new flush.
func (n *Node) flushPending() {
	n.flushArmed = false
	pend := n.pending
	n.pending = n.flushing[:0]
	n.flushing = pend
	bh, batched := n.handler.(BatchHandler)
	for i := 0; i < len(pend); {
		j := i + 1
		for j < len(pend) && pend[j].from == pend[i].from {
			j++
		}
		if batched && j-i > 1 {
			buf := n.batchBuf[:0]
			for k := i; k < j; k++ {
				buf = append(buf, pend[k].p)
			}
			bh.ReceiveBatch(n, buf, pend[i].from)
			n.batchBuf = buf[:0]
		} else {
			for k := i; k < j; k++ {
				n.handler.Receive(n, pend[k].p, pend[k].from)
			}
		}
		i = j
	}
}

// Forward routes p toward its destination: decrements TTL, looks up the
// next hop, and transmits. It reports whether the packet moved on.
// A dropped packet (TTL expiry, no route, queue overflow) is released
// back to the packet pool — callers must not retain p after a false
// return.
func (n *Node) Forward(p *packet.Packet) bool {
	if p.TTL == 0 {
		n.RoutingDrops++
		p.Release()
		return false
	}
	p.TTL--
	hop := n.NextHop(p.Dst)
	if hop == nil {
		n.RoutingDrops++
		p.Release()
		return false
	}
	return hop.Send(p)
}

// Originate injects a packet generated by this node into the network,
// stamping the source if unset. As with Forward, a false return means
// the packet was dropped and released; callers must not retain it.
func (n *Node) Originate(p *packet.Packet) bool {
	if p.Src == 0 {
		p.Src = n.Addr()
	}
	hop := n.NextHop(p.Dst)
	if hop == nil {
		n.RoutingDrops++
		p.Release()
		return false
	}
	return hop.Send(p)
}

// Network is a set of running nodes built from a topology.
type Network struct {
	eng    *sim.Engine
	topo   *topology.Topology
	nodes  []*Node
	byAddr map[flow.Addr]*Node

	// faultRng drives all fault randomness (faults.go). Lazily seeded;
	// fault-free networks never touch it, so their schedules are
	// byte-identical to builds without fault injection.
	faultRng *rand.Rand
}

// Build instantiates a network over the engine. Every node starts with
// a plain forwarding handler (hosts drop packets not addressed to
// them); install protocol handlers with Node.SetHandler.
func Build(eng *sim.Engine, topo *topology.Topology) (*Network, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	net := &Network{eng: eng, topo: topo, byAddr: make(map[flow.Addr]*Node)}
	net.nodes = make([]*Node, len(topo.Nodes))
	for _, tn := range topo.Nodes {
		n := &Node{
			net:    net,
			info:   tn,
			byPeer: make(map[flow.Addr]*Iface),
			routes: make(map[flow.Addr]*Iface),
		}
		n.handler = HandlerFunc(defaultReceive)
		net.nodes[tn.ID] = n
		net.byAddr[tn.Addr] = n
	}
	for _, ls := range topo.Links {
		qlen := ls.QueueLen
		if qlen <= 0 {
			qlen = DefaultQueueLen
		}
		a, b := net.nodes[ls.A], net.nodes[ls.B]
		ab := &Iface{owner: a, neighbor: b, delay: ls.Delay, bandwidth: ls.Bandwidth, queueCap: qlen}
		ba := &Iface{owner: b, neighbor: a, delay: ls.Delay, bandwidth: ls.Bandwidth, queueCap: qlen}
		a.ifaces = append(a.ifaces, ab)
		b.ifaces = append(b.ifaces, ba)
		a.byPeer[b.Addr()] = ab
		b.byPeer[a.Addr()] = ba
	}
	for from, hops := range topo.NextHops() {
		n := net.nodes[from]
		for dst, via := range hops {
			n.routes[topo.Nodes[dst].Addr] = n.byPeer[topo.Nodes[via].Addr]
		}
	}
	return net, nil
}

// MustBuild is Build for static topologies known to be valid.
func MustBuild(eng *sim.Engine, topo *topology.Topology) *Network {
	net, err := Build(eng, topo)
	if err != nil {
		panic(fmt.Sprintf("netsim: %v", err))
	}
	return net
}

// Engine returns the simulation engine.
func (net *Network) Engine() *sim.Engine { return net.eng }

// Topology returns the topology the network was built from.
func (net *Network) Topology() *topology.Topology { return net.topo }

// Node returns the node with the given topology ID.
func (net *Network) Node(id topology.NodeID) *Node { return net.nodes[id] }

// NodeByAddr returns the node with the given address, or nil.
func (net *Network) NodeByAddr(a flow.Addr) *Node { return net.byAddr[a] }

// Nodes lists all nodes in topology order.
func (net *Network) Nodes() []*Node { return net.nodes }

// defaultReceive is plain best-effort forwarding: routers relay,
// endpoints silently absorb their own traffic and drop the rest.
func defaultReceive(n *Node, p *packet.Packet, _ *Iface) {
	if p.Dst == n.Addr() {
		return
	}
	n.Forward(p)
}
