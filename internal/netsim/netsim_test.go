package netsim

import (
	"testing"
	"time"

	"aitf/internal/flow"
	"aitf/internal/packet"
	"aitf/internal/sim"
	"aitf/internal/topology"
)

// lineTopo builds host A — router R — host B with the given params.
func lineTopo(p topology.Params) (*topology.Topology, [3]topology.NodeID) {
	t := topology.New()
	a := t.AddNode("A", flow.MakeAddr(10, 0, 0, 1), topology.KindHost, 1)
	r := t.AddNode("R", flow.MakeAddr(10, 0, 0, 2), topology.KindInternalRouter, 0)
	b := t.AddNode("B", flow.MakeAddr(10, 0, 0, 3), topology.KindHost, 2)
	t.AddLink(a, r, p.AccessDelay, p.CoreBandwidth, p.QueueLen)
	t.AddLink(r, b, p.AccessDelay, p.TailBandwidth, p.QueueLen)
	return t, [3]topology.NodeID{a, r, b}
}

type sink struct {
	got   []*packet.Packet
	times []sim.Time
}

func (s *sink) Receive(n *Node, p *packet.Packet, _ *Iface) {
	if p.Dst != n.Addr() {
		n.Forward(p)
		return
	}
	s.got = append(s.got, p)
	s.times = append(s.times, n.Engine().Now())
}

func TestEndToEndDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	params := topology.Params{AccessDelay: 10 * time.Millisecond}
	topo, ids := lineTopo(params)
	net := MustBuild(eng, topo)
	dst := net.Node(ids[2])
	s := &sink{}
	dst.SetHandler(s)

	src := net.Node(ids[0])
	p := packet.NewData(src.Addr(), dst.Addr(), flow.ProtoUDP, 1000, 80, 500)
	if !src.Originate(p) {
		t.Fatal("Originate failed")
	}
	eng.Run()
	if len(s.got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(s.got))
	}
	// Two hops of 10 ms propagation, zero serialization (infinite bw).
	if s.times[0] != 20*time.Millisecond {
		t.Fatalf("arrival at %v, want 20ms", s.times[0])
	}
	if s.got[0].TTL != packet.DefaultTTL-1 {
		t.Fatalf("TTL = %d, want %d (one forwarding hop)", s.got[0].TTL, packet.DefaultTTL-1)
	}
}

func TestSerializationDelay(t *testing.T) {
	eng := sim.NewEngine(1)
	// 1000 bytes/s link: a packet of 516 wire bytes takes 516 ms to
	// serialize; delivery = tx + propagation.
	params := topology.Params{AccessDelay: 10 * time.Millisecond, TailBandwidth: 1000}
	topo, ids := lineTopo(params)
	net := MustBuild(eng, topo)
	s := &sink{}
	net.Node(ids[2]).SetHandler(s)

	src := net.Node(ids[0])
	p := packet.NewData(src.Addr(), net.Node(ids[2]).Addr(), flow.ProtoUDP, 1, 2, 500)
	src.Originate(p)
	eng.Run()
	if len(s.got) != 1 {
		t.Fatalf("delivered %d", len(s.got))
	}
	wire := float64(packet.HeaderBytes + 500)
	want := 10*time.Millisecond + // A→R hop (infinite bw)
		sim.Time(wire/1000*1e9) + // serialization on R→B
		10*time.Millisecond // propagation R→B
	if s.times[0] != want {
		t.Fatalf("arrival at %v, want %v", s.times[0], want)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	params := topology.Params{
		AccessDelay:   time.Millisecond,
		TailBandwidth: 1000, // very slow
		QueueLen:      4,
	}
	topo, ids := lineTopo(params)
	net := MustBuild(eng, topo)
	s := &sink{}
	net.Node(ids[2]).SetHandler(s)

	src := net.Node(ids[0])
	dst := net.Node(ids[2]).Addr()
	// Burst of 20 packets arrives at R nearly simultaneously; R's slow
	// output link fits 1 in flight + 4 queued.
	for i := 0; i < 20; i++ {
		src.Originate(packet.NewData(src.Addr(), dst, flow.ProtoUDP, uint16(i), 80, 500))
	}
	eng.Run()
	if len(s.got) != 5 {
		t.Fatalf("delivered %d packets, want 5 (1 transmitting + 4 queued)", len(s.got))
	}
	r := net.Node(ids[1])
	drops := r.IfaceTo(dst).Stats().QueueDrops
	if drops != 15 {
		t.Fatalf("queue drops = %d, want 15", drops)
	}
}

func TestTTLExpiry(t *testing.T) {
	eng := sim.NewEngine(1)
	topo, ids := lineTopo(topology.Params{AccessDelay: time.Millisecond})
	net := MustBuild(eng, topo)
	s := &sink{}
	net.Node(ids[2]).SetHandler(s)

	src := net.Node(ids[0])
	p := packet.NewData(src.Addr(), net.Node(ids[2]).Addr(), flow.ProtoUDP, 1, 2, 10)
	p.TTL = 0 // dies at the router
	src.Originate(p)
	eng.Run()
	if len(s.got) != 0 {
		t.Fatal("TTL-0 packet was delivered")
	}
	if net.Node(ids[1]).RoutingDrops != 1 {
		t.Fatalf("router RoutingDrops = %d", net.Node(ids[1]).RoutingDrops)
	}
}

func TestIfaceStats(t *testing.T) {
	eng := sim.NewEngine(1)
	topo, ids := lineTopo(topology.Params{AccessDelay: time.Millisecond})
	net := MustBuild(eng, topo)
	src, r := net.Node(ids[0]), net.Node(ids[1])
	p := packet.NewData(src.Addr(), net.Node(ids[2]).Addr(), flow.ProtoUDP, 1, 2, 100)
	src.Originate(p)
	eng.Run()
	tx := src.IfaceTo(r.Addr()).Stats()
	if tx.TxPackets != 1 || tx.TxBytes != uint64(packet.HeaderBytes+100) {
		t.Fatalf("tx stats = %+v", tx)
	}
	rx := r.IfaceTo(src.Addr()).Stats()
	if rx.RxPackets != 1 || rx.RxBytes != tx.TxBytes {
		t.Fatalf("rx stats = %+v", rx)
	}
}

func TestDefaultHandlerAbsorbsOwnTraffic(t *testing.T) {
	eng := sim.NewEngine(1)
	topo, ids := lineTopo(topology.Params{AccessDelay: time.Millisecond})
	net := MustBuild(eng, topo)
	src := net.Node(ids[0])
	// No handler installed on B: default absorbs without error.
	src.Originate(packet.NewData(src.Addr(), net.Node(ids[2]).Addr(), flow.ProtoUDP, 1, 2, 10))
	eng.Run()
	if net.Node(ids[2]).RoutingDrops != 0 {
		t.Fatal("default handler should absorb own traffic silently")
	}
}

func TestOriginateNoRoute(t *testing.T) {
	eng := sim.NewEngine(1)
	topo, ids := lineTopo(topology.Params{AccessDelay: time.Millisecond})
	net := MustBuild(eng, topo)
	src := net.Node(ids[0])
	p := packet.NewData(src.Addr(), flow.MakeAddr(99, 9, 9, 9), flow.ProtoUDP, 1, 2, 10)
	if src.Originate(p) {
		t.Fatal("Originate to unknown destination succeeded")
	}
	if src.RoutingDrops != 1 {
		t.Fatalf("RoutingDrops = %d", src.RoutingDrops)
	}
}

func TestOriginateStampsSource(t *testing.T) {
	eng := sim.NewEngine(1)
	topo, ids := lineTopo(topology.Params{AccessDelay: time.Millisecond})
	net := MustBuild(eng, topo)
	s := &sink{}
	net.Node(ids[2]).SetHandler(s)
	src := net.Node(ids[0])
	p := packet.NewData(0, net.Node(ids[2]).Addr(), flow.ProtoUDP, 1, 2, 10)
	src.Originate(p)
	eng.Run()
	if len(s.got) != 1 || s.got[0].Src != src.Addr() {
		t.Fatal("source not stamped")
	}
}

func TestBuildRejectsInvalidTopology(t *testing.T) {
	topo := topology.New()
	topo.AddNode("a", flow.MakeAddr(1, 1, 1, 1), topology.KindHost, 1)
	topo.AddNode("b", flow.MakeAddr(2, 2, 2, 2), topology.KindHost, 2)
	if _, err := Build(sim.NewEngine(1), topo); err == nil {
		t.Fatal("Build accepted a disconnected topology")
	}
}

func TestFigure1EndToEnd(t *testing.T) {
	eng := sim.NewEngine(1)
	p := topology.DefaultParams()
	p.TailBandwidth = 0 // uncongested for this test
	topo, ids := topology.Figure1(p)
	net := MustBuild(eng, topo)
	s := &sink{}
	net.Node(ids.GHost).SetHandler(s)
	b := net.Node(ids.BHost)
	b.Originate(packet.NewData(b.Addr(), net.Node(ids.GHost).Addr(), flow.ProtoUDP, 1, 80, 1000))
	eng.Run()
	if len(s.got) != 1 {
		t.Fatalf("delivered %d", len(s.got))
	}
	// 2 access hops of 50ms + 5 backbone hops of 10ms = 150ms.
	if want := 150 * time.Millisecond; s.times[0] != want {
		t.Fatalf("B_host→G_host delay = %v, want %v", s.times[0], want)
	}
}

func TestNodeAccessors(t *testing.T) {
	eng := sim.NewEngine(1)
	topo, ids := topology.Figure1(topology.DefaultParams())
	net := MustBuild(eng, topo)
	n := net.Node(ids.GGw1)
	if n.Name() != "G_gw1" || n.Kind() != topology.KindBorderRouter || n.AS() != 1 {
		t.Fatalf("accessors: %s %v %d", n.Name(), n.Kind(), n.AS())
	}
	if net.NodeByAddr(n.Addr()) != n {
		t.Fatal("NodeByAddr mismatch")
	}
	if net.NodeByAddr(flow.MakeAddr(9, 9, 9, 9)) != nil {
		t.Fatal("NodeByAddr for unknown addr should be nil")
	}
	if len(net.Nodes()) != 8 {
		t.Fatal("Nodes() length wrong")
	}
	if net.Topology() != topo || net.Engine() != eng {
		t.Fatal("Topology/Engine accessors wrong")
	}
	if n.Net() != net {
		t.Fatal("Net accessor wrong")
	}
}

func BenchmarkForwardThroughChain(b *testing.B) {
	eng := sim.NewEngine(1)
	p := topology.DefaultParams()
	p.TailBandwidth = 0
	topo, ids := topology.Chain(5, p)
	net := MustBuild(eng, topo)
	src := net.Node(ids.Attacker)
	dst := net.Node(ids.Victim).Addr()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.Originate(packet.NewData(src.Addr(), dst, flow.ProtoUDP, 1, 80, 1000))
		if eng.Pending() > 4096 {
			eng.Run()
		}
	}
	eng.Run()
}

// TestPropertyConservation: across arbitrary bursts into a bottleneck,
// delivered + queue-dropped + in-queue equals offered — the network
// neither duplicates nor loses packets silently.
func TestPropertyConservation(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		eng := sim.NewEngine(seed)
		params := topology.Params{
			AccessDelay:   time.Millisecond,
			TailBandwidth: 50_000, // bottleneck
			QueueLen:      8,
		}
		topo, ids := lineTopo(params)
		net := MustBuild(eng, topo)
		s := &sink{}
		net.Node(ids[2]).SetHandler(s)
		src, r := net.Node(ids[0]), net.Node(ids[1])
		dst := net.Node(ids[2]).Addr()

		rng := eng.Rand()
		offered := 0
		for i := 0; i < 200; i++ {
			at := time.Duration(rng.Intn(1000)) * time.Millisecond
			eng.ScheduleAt(at, func() {
				src.Originate(packet.NewData(src.Addr(), dst, flow.ProtoUDP, 1, 2, 500))
				offered++
			})
		}
		eng.Run()

		dropped := r.IfaceTo(dst).Stats().QueueDrops
		delivered := uint64(len(s.got))
		if delivered+dropped != uint64(offered) {
			t.Fatalf("seed %d: delivered %d + dropped %d != offered %d",
				seed, delivered, dropped, offered)
		}
	}
}

// TestBandwidthCeiling: a saturated link delivers at its configured
// rate, not the offered rate.
func TestBandwidthCeiling(t *testing.T) {
	eng := sim.NewEngine(1)
	params := topology.Params{
		AccessDelay:   time.Millisecond,
		TailBandwidth: 100_000,
		QueueLen:      16,
	}
	topo, ids := lineTopo(params)
	net := MustBuild(eng, topo)
	s := &sink{}
	net.Node(ids[2]).SetHandler(s)
	src := net.Node(ids[0])
	dst := net.Node(ids[2]).Addr()

	// Offer 5x the capacity for 10 s.
	wireSize := 516.0
	interval := sim.Time(wireSize / 500_000 * 1e9)
	var tick func()
	tick = func() {
		if eng.Now() >= 10*time.Second {
			return
		}
		src.Originate(packet.NewData(src.Addr(), dst, flow.ProtoUDP, 1, 2, 500))
		eng.Schedule(interval, tick)
	}
	eng.ScheduleAt(0, tick)
	eng.Run()

	var deliveredBytes float64
	for _, p := range s.got {
		deliveredBytes += float64(p.WireSize())
	}
	rate := deliveredBytes / 10
	if rate < 90_000 || rate > 110_000 {
		t.Fatalf("delivered %v B/s through a 100 KB/s link", rate)
	}
}

// batchSink records deliveries and which arrived batched.
type batchSink struct {
	sink
	batches [][]*packet.Packet
}

func (s *batchSink) ReceiveBatch(n *Node, ps []*packet.Packet, from *Iface) {
	s.batches = append(s.batches, append([]*packet.Packet(nil), ps...))
	for _, p := range ps {
		s.Receive(n, p, from)
	}
}

func TestBatchDeliveryCoalesces(t *testing.T) {
	eng := sim.NewEngine(1)
	params := topology.Params{AccessDelay: 10 * time.Millisecond}
	topo, ids := lineTopo(params)
	net := MustBuild(eng, topo)
	dst := net.Node(ids[2])
	s := &batchSink{}
	dst.SetHandler(s)
	dst.SetBatchDelivery(true)

	src := net.Node(ids[0])
	const n = 8
	for i := 0; i < n; i++ {
		// Same instant, infinite bandwidth: all arrive together.
		p := packet.NewData(src.Addr(), dst.Addr(), flow.ProtoUDP, uint16(1000+i), 80, 100)
		if !src.Originate(p) {
			t.Fatal("Originate failed")
		}
	}
	eng.Run()
	if len(s.got) != n {
		t.Fatalf("delivered %d packets, want %d", len(s.got), n)
	}
	if len(s.batches) != 1 || len(s.batches[0]) != n {
		t.Fatalf("batches = %d (first len %d), want one batch of %d",
			len(s.batches), len(s.batches[0]), n)
	}
	for _, at := range s.times {
		if at != 20*time.Millisecond {
			t.Fatalf("arrival at %v, want 20ms", at)
		}
	}
	// In-order within the batch.
	for i, p := range s.batches[0] {
		if p.SrcPort != uint16(1000+i) {
			t.Fatalf("batch order: packet %d has sport %d", i, p.SrcPort)
		}
	}
}

// TestBatchDeliveryPlainHandler checks coalescing degrades to ordered
// per-packet delivery when the handler lacks ReceiveBatch.
func TestBatchDeliveryPlainHandler(t *testing.T) {
	eng := sim.NewEngine(1)
	params := topology.Params{AccessDelay: time.Millisecond}
	topo, ids := lineTopo(params)
	net := MustBuild(eng, topo)
	dst := net.Node(ids[2])
	s := &sink{}
	dst.SetHandler(s)
	dst.SetBatchDelivery(true)

	src := net.Node(ids[0])
	for i := 0; i < 4; i++ {
		src.Originate(packet.NewData(src.Addr(), dst.Addr(), flow.ProtoUDP, uint16(i), 80, 100))
	}
	eng.Run()
	if len(s.got) != 4 {
		t.Fatalf("delivered %d packets, want 4", len(s.got))
	}
	for i, p := range s.got {
		if p.SrcPort != uint16(i) {
			t.Fatalf("order: packet %d has sport %d", i, p.SrcPort)
		}
	}
}
