package netsim

import (
	"testing"
	"time"

	"aitf/internal/flow"
	"aitf/internal/packet"
	"aitf/internal/sim"
	"aitf/internal/topology"
)

// lossyRun sends n control and n data packets A→B across the line
// topology with the given seeded control-loss rate, and returns the
// delivered counts and total fault drops.
func lossyRun(seed int64, n int, ctrlLoss float64) (ctrlGot, dataGot int, lossDrops uint64) {
	eng := sim.NewEngine(1)
	topo, ids := lineTopo(topology.Params{AccessDelay: time.Millisecond})
	net := MustBuild(eng, topo)
	net.SeedFaults(seed)
	net.SetLinkLoss(topo.Nodes[ids[0]].Addr, topo.Nodes[ids[1]].Addr, ctrlLoss, 0)

	src, dst := net.Node(ids[0]), net.Node(ids[2])
	s := &sink{}
	dst.SetHandler(s)
	for i := 0; i < n; i++ {
		i := i
		eng.ScheduleAt(sim.Time(i)*time.Millisecond, func() {
			src.Originate(packet.NewControl(src.Addr(), dst.Addr(),
				&packet.VerifyReply{Flow: flow.PairLabel(src.Addr(), dst.Addr()), Nonce: uint64(i)}))
			src.Originate(packet.NewData(src.Addr(), dst.Addr(), flow.ProtoUDP, 1, 2, 100))
		})
	}
	eng.Run()
	for _, p := range s.got {
		if p.IsControl() {
			ctrlGot++
		} else {
			dataGot++
		}
	}
	return ctrlGot, dataGot, src.AggStats().LossDrops
}

// TestControlOnlyLossSparesData: per-class loss hits exactly the
// configured class — data packets always arrive, control packets drop
// at roughly the configured rate.
func TestControlOnlyLossSparesData(t *testing.T) {
	ctrlGot, dataGot, drops := lossyRun(42, 200, 0.3)
	if dataGot != 200 {
		t.Fatalf("data delivered %d/200 under control-only loss", dataGot)
	}
	if ctrlGot == 200 || ctrlGot == 0 {
		t.Fatalf("control delivered %d/200 at 30%% loss, want some but not all", ctrlGot)
	}
	if drops != uint64(200-ctrlGot) {
		t.Fatalf("LossDrops %d does not account for the %d missing control packets", drops, 200-ctrlGot)
	}
	if ctrlGot < 100 || ctrlGot > 180 {
		t.Fatalf("control delivery %d/200 wildly off a 30%% loss rate", ctrlGot)
	}
}

// TestLinkLossDeterministic: the fault source is seeded — identical
// seeds drop identical packets, different seeds (overwhelmingly) don't.
func TestLinkLossDeterministic(t *testing.T) {
	a1, _, d1 := lossyRun(7, 300, 0.25)
	a2, _, d2 := lossyRun(7, 300, 0.25)
	if a1 != a2 || d1 != d2 {
		t.Fatalf("same seed diverged: delivered %d vs %d, drops %d vs %d", a1, a2, d1, d2)
	}
	b, _, _ := lossyRun(8, 300, 0.25)
	if a1 == b {
		t.Logf("seeds 7 and 8 coincidentally delivered the same count %d", a1)
	}
}

// TestFaultFreeDrawsNoRandomness: a network that configures no faults
// never instantiates the fault source at all, so fault-free runs are
// byte-identical to pre-fault builds.
func TestFaultFreeDrawsNoRandomness(t *testing.T) {
	eng := sim.NewEngine(1)
	topo, ids := lineTopo(topology.Params{AccessDelay: time.Millisecond})
	net := MustBuild(eng, topo)
	src, dst := net.Node(ids[0]), net.Node(ids[2])
	s := &sink{}
	dst.SetHandler(s)
	for i := 0; i < 50; i++ {
		src.Originate(packet.NewData(src.Addr(), dst.Addr(), flow.ProtoUDP, 1, 2, 100))
	}
	eng.Run()
	if net.faultRng != nil {
		t.Fatal("fault rng instantiated without any configured fault")
	}
	if len(s.got) != 50 {
		t.Fatalf("delivered %d/50 on a pristine network", len(s.got))
	}
}

// TestLinkFlapWindow: packets sent while the link is administratively
// down are fault drops; before and after the flap they pass.
func TestLinkFlapWindow(t *testing.T) {
	eng := sim.NewEngine(1)
	topo, ids := lineTopo(topology.Params{AccessDelay: time.Millisecond})
	net := MustBuild(eng, topo)
	a, r := topo.Nodes[ids[0]].Addr, topo.Nodes[ids[1]].Addr
	net.FlapLink(a, r, sim.Time(100*time.Millisecond), sim.Time(200*time.Millisecond))

	src, dst := net.Node(ids[0]), net.Node(ids[2])
	s := &sink{}
	dst.SetHandler(s)
	for _, at := range []time.Duration{50 * time.Millisecond, 150 * time.Millisecond, 250 * time.Millisecond} {
		at := at
		eng.ScheduleAt(sim.Time(at), func() {
			src.Originate(packet.NewData(src.Addr(), dst.Addr(), flow.ProtoUDP, 1, 2, 100))
		})
	}
	eng.Run()
	if len(s.got) != 2 {
		t.Fatalf("delivered %d/3, want exactly the two outside the flap window", len(s.got))
	}
	if st := src.AggStats(); st.LossDrops != 1 || st.DataLossDrops != 1 {
		t.Fatalf("flap drop accounting: %+v", st)
	}
}

// TestCrashDropsQueuedAndArrivals: a crash wipes the node's queued
// transmissions and drops everything arriving while it is down;
// packets already serializing onto the wire survive. Restart restores
// forwarding.
func TestCrashDropsQueuedAndArrivals(t *testing.T) {
	eng := sim.NewEngine(1)
	// Tight bandwidth on R→B so packets queue at R.
	topo, ids := lineTopo(topology.Params{AccessDelay: time.Millisecond, TailBandwidth: 100_000, QueueLen: 32})
	net := MustBuild(eng, topo)
	src, router, dst := net.Node(ids[0]), net.Node(ids[1]), net.Node(ids[2])
	s := &sink{}
	dst.SetHandler(s)

	// 10 packets back-to-back: ~10 ms serialization each on R→B, so
	// most still sit in R's queue when R crashes at t = 25 ms.
	for i := 0; i < 10; i++ {
		src.Originate(packet.NewData(src.Addr(), dst.Addr(), flow.ProtoUDP, 1, 2, 1000))
	}
	eng.ScheduleAt(sim.Time(25*time.Millisecond), func() { router.Crash() })
	// While down, new arrivals at R are dropped and counted.
	eng.ScheduleAt(sim.Time(40*time.Millisecond), func() {
		src.Originate(packet.NewData(src.Addr(), dst.Addr(), flow.ProtoUDP, 1, 2, 1000))
	})
	eng.ScheduleAt(sim.Time(60*time.Millisecond), func() { router.Restart() })
	eng.ScheduleAt(sim.Time(80*time.Millisecond), func() {
		src.Originate(packet.NewData(src.Addr(), dst.Addr(), flow.ProtoUDP, 1, 2, 1000))
	})
	eng.Run()

	if router.CrashDrops == 0 {
		t.Fatal("crash dropped nothing despite a full queue and an arrival while down")
	}
	got := len(s.got)
	if got == 0 {
		t.Fatal("nothing delivered: in-flight packets must survive the crash")
	}
	if got >= 11 {
		t.Fatalf("delivered %d packets, crash should have eaten the queue", got)
	}
	// The post-restart packet made it: delivery resumed.
	last := s.times[len(s.times)-1]
	if last < sim.Time(80*time.Millisecond) {
		t.Fatalf("no delivery after restart (last at %v)", last)
	}
	if router.Down() {
		t.Fatal("router still reports down after Restart")
	}
}
