package netsim

// Fault injection: seeded random per-link loss, deterministic link
// up/down flap schedules, and node crash/restart. All randomness comes
// from one network-level seeded source drawn in deterministic event
// order, so a fault schedule replays exactly for a given seed — and a
// network that configures no faults never draws from it at all,
// keeping fault-free runs byte-identical to pre-fault builds.

import (
	"math/rand"

	"aitf/internal/flow"
	"aitf/internal/packet"
	"aitf/internal/sim"
)

// SeedFaults seeds the network's fault randomness source. Call once
// before configuring link loss; SetLinkLoss falls back to seed 1 when
// no seed was provided.
func (net *Network) SeedFaults(seed int64) {
	net.faultRng = rand.New(rand.NewSource(seed))
}

// ifacePair returns the two directed interfaces of the link between a
// and b, or nils when no such link exists.
func (net *Network) ifacePair(a, b flow.Addr) (*Iface, *Iface) {
	na, nb := net.byAddr[a], net.byAddr[b]
	if na == nil || nb == nil {
		return nil, nil
	}
	return na.byPeer[b], nb.byPeer[a]
}

// SetLinkLoss sets random loss probabilities in [0, 1] on the link
// between a and b (both directions), separately for control and data
// packets. Control-only loss models the paper's hard case — signaling
// squeezed by the very congestion it is trying to relieve — without
// perturbing data-plane accounting. No-op when the link doesn't exist.
func (net *Network) SetLinkLoss(a, b flow.Addr, ctrl, data float64) {
	if net.faultRng == nil {
		net.faultRng = rand.New(rand.NewSource(1))
	}
	ab, ba := net.ifacePair(a, b)
	for _, i := range []*Iface{ab, ba} {
		if i != nil {
			i.ctrlLoss = clamp01(ctrl)
			i.dataLoss = clamp01(data)
		}
	}
}

// SetLinkState administratively raises or lowers the link between a
// and b (both directions). Sends into a downed link count as fault
// losses. No-op when the link doesn't exist.
func (net *Network) SetLinkState(a, b flow.Addr, up bool) {
	ab, ba := net.ifacePair(a, b)
	for _, i := range []*Iface{ab, ba} {
		if i != nil {
			i.down = !up
		}
	}
}

// FlapLink schedules one down/up flap of the link between a and b:
// down at downAt, back up at upAt. Times in the past fire immediately
// (sim.Engine clamps them to now).
func (net *Network) FlapLink(a, b flow.Addr, downAt, upAt sim.Time) {
	net.eng.ScheduleAt(downAt, func() { net.SetLinkState(a, b, false) })
	net.eng.ScheduleAt(upAt, func() { net.SetLinkState(a, b, true) })
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// lossFor returns the interface's loss probability for p's class.
func (i *Iface) lossFor(p *packet.Packet) float64 {
	if p.IsControl() {
		return i.ctrlLoss
	}
	return i.dataLoss
}

// dropFault counts a fault-induced loss and recycles the packet.
func (i *Iface) dropFault(p *packet.Packet) {
	i.stats.LossDrops++
	if p.IsControl() {
		i.stats.CtrlLossDrops++
	} else {
		i.stats.DataLossDrops++
	}
	p.Release()
}

// Crash takes the node down mid-run. Packets still sitting in its
// output queues are dropped (in-flight packets that already started
// serializing survive — they are on the wire), buffered same-instant
// arrivals are dropped, and the handler reverts to the default plain
// handler: volatile protocol state is gone, exactly as a process crash
// would lose it. Protocol layers with their own timers must stop them
// separately (e.g. core.Gateway.Halt); a crashed node drops everything
// that arrives until Restart.
func (n *Node) Crash() {
	now := n.net.eng.Now()
	n.down = true
	for _, i := range n.ifaces {
		// Bumping the epoch invalidates the queued-- closures and makes
		// arrival closures for still-queued packets drop instead of
		// deliver.
		i.epoch++
		i.crashedAt = now
		n.CrashDrops += uint64(i.queued)
		i.queued = 0
		i.busyUntil = now
	}
	for _, a := range n.pending {
		n.CrashDrops++
		a.p.Release()
	}
	n.pending = n.pending[:0]
	n.handler = HandlerFunc(defaultReceive)
}

// Restart brings a crashed node back with empty queues and the default
// handler. The caller re-attaches its protocol handler (e.g. via
// core.Gateway.Attach) and restores any snapshot it kept.
func (n *Node) Restart() { n.down = false }

// Down reports whether the node is crashed.
func (n *Node) Down() bool { return n.down }

// AggStats sums the node's interface counters into one IfaceStats —
// the per-node view the metrics surface exports.
func (n *Node) AggStats() IfaceStats {
	var s IfaceStats
	for _, i := range n.ifaces {
		st := i.Stats()
		s.TxPackets += st.TxPackets
		s.TxBytes += st.TxBytes
		s.RxPackets += st.RxPackets
		s.RxBytes += st.RxBytes
		s.QueueDrops += st.QueueDrops
		s.CtrlQueueDrops += st.CtrlQueueDrops
		s.DataQueueDrops += st.DataQueueDrops
		s.LossDrops += st.LossDrops
		s.CtrlLossDrops += st.CtrlLossDrops
		s.DataLossDrops += st.DataLossDrops
	}
	return s
}
