// Package metrics provides the measurement instruments used by the
// experiment harness: byte/packet meters with virtual-time windows,
// time series, and plain-text table rendering for experiment output.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Time aliases the virtual timestamp type used across the simulator.
type Time = time.Duration

// Meter accumulates a byte count and exposes average bandwidth over the
// interval it was observed. It also keeps per-window buckets so tests
// can examine the time profile of a flow (e.g. on-off bursts).
type Meter struct {
	start   Time
	end     Time
	started bool

	Bytes   uint64
	Packets uint64

	window  Time
	buckets map[int64]uint64
}

// NewMeter creates a meter that additionally tracks per-window byte
// buckets of the given width; width 0 disables bucketing.
func NewMeter(window Time) *Meter {
	return &Meter{window: window, buckets: make(map[int64]uint64)}
}

// Add records n payload bytes observed at time now.
func (m *Meter) Add(now Time, n int) {
	if !m.started {
		m.start = now
		m.started = true
	}
	if now > m.end {
		m.end = now
	}
	m.Bytes += uint64(n)
	m.Packets++
	if m.window > 0 {
		m.buckets[int64(now/m.window)] += uint64(n)
	}
}

// First returns the time of the first observation.
func (m *Meter) First() Time { return m.start }

// Last returns the time of the last observation.
func (m *Meter) Last() Time { return m.end }

// Idle reports whether the meter never saw traffic.
func (m *Meter) Idle() bool { return !m.started }

// BandwidthOver returns average bytes/second across an externally
// chosen horizon (e.g. the whole experiment), which is the "effective
// bandwidth ... actually experienced by the victim" of §IV-A.1.
func (m *Meter) BandwidthOver(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(m.Bytes) / horizon.Seconds()
}

// Buckets returns (windowIndex, bytes) pairs sorted by window.
func (m *Meter) Buckets() []Bucket {
	out := make([]Bucket, 0, len(m.buckets))
	for k, v := range m.buckets {
		out = append(out, Bucket{Index: k, Bytes: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// ActiveWindows counts windows with any traffic; for an on-off flow it
// approximates the number of "on" bursts × burst length / window.
func (m *Meter) ActiveWindows() int { return len(m.buckets) }

// Bucket is one fixed-width measurement window.
type Bucket struct {
	Index int64
	Bytes uint64
}

// Series is an append-only time series of (t, value) points.
type Series struct {
	Name   string
	Points []Point
}

// Point is one sample.
type Point struct {
	T Time
	V float64
}

// Append adds a sample; timestamps should be nondecreasing.
func (s *Series) Append(t Time, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Max returns the maximum value, or 0 for an empty series.
func (s *Series) Max() float64 {
	max := 0.0
	for _, p := range s.Points {
		if p.V > max {
			max = p.V
		}
	}
	return max
}

// Last returns the final value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// Table renders experiment rows as aligned plain text, the format every
// harness driver and example binary prints.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case time.Duration:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FormatFloat renders floats compactly: integers without decimals,
// small magnitudes with enough precision to be meaningful.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v == float64(int64(v)) && v < 1e12 && v > -1e12:
		return fmt.Sprintf("%d", int64(v))
	case v < 0.01 && v > -0.01:
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// FormatBps renders a bytes/second figure with a binary-free unit.
func FormatBps(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.2f GB/s", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.2f MB/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.2f KB/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0f B/s", bps)
	}
}
