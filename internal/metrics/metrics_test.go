package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestMeterBasics(t *testing.T) {
	m := NewMeter(time.Second)
	if !m.Idle() {
		t.Fatal("fresh meter not idle")
	}
	m.Add(100*time.Millisecond, 500)
	m.Add(200*time.Millisecond, 500)
	m.Add(2500*time.Millisecond, 1000)
	if m.Idle() {
		t.Fatal("meter idle after Add")
	}
	if m.Bytes != 2000 || m.Packets != 3 {
		t.Fatalf("Bytes=%d Packets=%d", m.Bytes, m.Packets)
	}
	if m.First() != 100*time.Millisecond || m.Last() != 2500*time.Millisecond {
		t.Fatalf("First=%v Last=%v", m.First(), m.Last())
	}
	// 2000 bytes over a 10s horizon = 200 B/s.
	if bw := m.BandwidthOver(10 * time.Second); bw != 200 {
		t.Fatalf("BandwidthOver = %v", bw)
	}
	if m.BandwidthOver(0) != 0 {
		t.Fatal("zero horizon should give 0")
	}
}

func TestMeterBuckets(t *testing.T) {
	m := NewMeter(time.Second)
	m.Add(100*time.Millisecond, 10) // window 0
	m.Add(900*time.Millisecond, 10) // window 0
	m.Add(2500*time.Millisecond, 7) // window 2
	bs := m.Buckets()
	if len(bs) != 2 {
		t.Fatalf("buckets = %v", bs)
	}
	if bs[0].Index != 0 || bs[0].Bytes != 20 {
		t.Fatalf("bucket0 = %+v", bs[0])
	}
	if bs[1].Index != 2 || bs[1].Bytes != 7 {
		t.Fatalf("bucket1 = %+v", bs[1])
	}
	if m.ActiveWindows() != 2 {
		t.Fatalf("ActiveWindows = %d", m.ActiveWindows())
	}
}

func TestMeterNoWindow(t *testing.T) {
	m := NewMeter(0)
	m.Add(time.Second, 10)
	if m.ActiveWindows() != 0 {
		t.Fatal("window disabled but buckets recorded")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Max() != 0 || s.Last() != 0 {
		t.Fatal("empty series nonzero")
	}
	s.Append(time.Second, 3)
	s.Append(2*time.Second, 9)
	s.Append(3*time.Second, 1)
	if s.Max() != 9 {
		t.Fatalf("Max = %v", s.Max())
	}
	if s.Last() != 1 {
		t.Fatalf("Last = %v", s.Last())
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("E4: victim gateway resources", "R1", "Ttmp", "peak filters", "analytic nv")
	tbl.AddRow(100.0, 600*time.Millisecond, 60, 60)
	tbl.AddRow(50.0, 600*time.Millisecond, 31, 30)
	tbl.AddNote("analytic nv = R1*Ttmp")
	out := tbl.String()
	for _, want := range []string{
		"== E4: victim gateway resources ==",
		"peak filters",
		"600ms",
		"note: analytic nv = R1*Ttmp",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows + note.
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and first row share the column start.
	hdr, row := lines[1], lines[3]
	if strings.Index(hdr, "Ttmp") != strings.Index(row, "600ms") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableRagged(t *testing.T) {
	tbl := NewTable("ragged", "a", "b")
	tbl.AddRow(1, 2, 3) // extra cell must not panic
	out := tbl.String()
	if !strings.Contains(out, "3") {
		t.Fatalf("extra cell dropped:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		42:       "42",
		0.000833: "8.33e-04",
		1.5:      "1.500",
		-3:       "-3",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatBps(t *testing.T) {
	cases := map[float64]string{
		500:    "500 B/s",
		2048:   "2.05 KB/s",
		3.2e6:  "3.20 MB/s",
		1.25e9: "1.25 GB/s",
	}
	for in, want := range cases {
		if got := FormatBps(in); got != want {
			t.Errorf("FormatBps(%v) = %q, want %q", in, got, want)
		}
	}
}

func BenchmarkMeterAdd(b *testing.B) {
	m := NewMeter(time.Second)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Add(time.Duration(i)*time.Microsecond, 1000)
	}
}
