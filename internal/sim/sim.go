// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock. Events are closures scheduled at
// absolute virtual times; ties are broken by scheduling order so that a
// run is fully reproducible for a given seed. All AITF protocol timing
// experiments (Td, Tr, Ttmp, T interplay) run on this engine.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, measured as a duration since the start of
// the simulation. The zero Time is the simulation epoch.
type Time = time.Duration

// Event is a scheduled closure. It is retained by the engine until it
// fires or is cancelled.
type Event struct {
	at      Time
	seq     uint64
	fn      func()
	index   int // heap index, -1 once removed
	cancled bool
}

// At reports the virtual time at which the event fires.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancled = true
	}
}

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all protocol code runs inside event callbacks.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool

	// Processed counts events that have fired since construction.
	Processed uint64
}

// NewEngine returns an engine whose random source is seeded with seed.
// The same seed always yields the same event interleaving.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn after delay d. A negative delay is treated as zero.
// The returned Event may be used to cancel the callback.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now+d, fn)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to the present.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt with nil callback")
	}
	if at < e.now {
		at = e.now
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Stop makes Run/RunUntil return before dispatching the next event.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events still queued (including
// cancelled events that have not yet been popped).
func (e *Engine) Pending() int { return len(e.queue) }

// RunUntil dispatches events in timestamp order until the queue is
// empty, Stop is called, or the next event is strictly after deadline.
// The clock is left at min(deadline, time of last fired event); if the
// queue empties early the clock still advances to deadline so that
// measurements cover the full window.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.queue)
		if next.cancled {
			continue
		}
		e.now = next.at
		e.Processed++
		next.fn()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// Run dispatches every queued event (including events scheduled by
// other events) until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := heap.Pop(&e.queue).(*Event)
		if next.cancled {
			continue
		}
		e.now = next.at
		e.Processed++
		next.fn()
	}
}

// Step fires exactly one event, returning false if the queue was empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*Event)
		if next.cancled {
			continue
		}
		e.now = next.at
		e.Processed++
		next.fn()
		return true
	}
	return false
}

func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v pending=%d processed=%d}", e.now, len(e.queue), e.Processed)
}
