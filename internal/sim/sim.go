// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock. Events are closures scheduled at
// absolute virtual times; ties are broken by scheduling order so that a
// run is fully reproducible for a given seed. All AITF protocol timing
// experiments (Td, Tr, Ttmp, T interplay) run on this engine.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, measured as a duration since the start of
// the simulation. The zero Time is the simulation epoch.
type Time = time.Duration

// Event is a scheduled closure. It is retained by the engine until it
// fires or is cancelled. Events are never recycled: callers may hold a
// reference and Cancel it long after it fired, so pooling them would
// let a stale handle cancel an unrelated future event.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
}

// At reports the virtual time at which the event fires.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all protocol code runs inside event callbacks.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool

	// Processed counts events that have fired since construction.
	Processed uint64
}

// NewEngine returns an engine whose random source is seeded with seed.
// The same seed always yields the same event interleaving.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn after delay d. A negative delay is treated as zero.
// The returned Event may be used to cancel the callback.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now+d, fn)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to the present.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt with nil callback")
	}
	if at < e.now {
		at = e.now
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	e.queue.push(ev)
	return ev
}

// Stop makes Run/RunUntil return before dispatching the next event.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events still queued (including
// cancelled events that have not yet been popped).
func (e *Engine) Pending() int { return e.queue.len() }

// RunUntil dispatches events in timestamp order until the queue is
// empty, Stop is called, or the next event is strictly after deadline.
// The clock is left at min(deadline, time of last fired event); if the
// queue empties early the clock still advances to deadline so that
// measurements cover the full window.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for e.queue.len() > 0 && !e.stopped {
		next := e.queue.peek()
		if next.at > deadline {
			break
		}
		e.queue.pop()
		if next.cancelled {
			continue
		}
		e.now = next.at
		e.Processed++
		next.fn()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// Run dispatches every queued event (including events scheduled by
// other events) until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for e.queue.len() > 0 && !e.stopped {
		next := e.queue.pop()
		if next.cancelled {
			continue
		}
		e.now = next.at
		e.Processed++
		next.fn()
	}
}

// Step fires exactly one event, returning false if the queue was empty.
func (e *Engine) Step() bool {
	for e.queue.len() > 0 {
		next := e.queue.pop()
		if next.cancelled {
			continue
		}
		e.now = next.at
		e.Processed++
		next.fn()
		return true
	}
	return false
}

func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v pending=%d processed=%d}", e.now, e.queue.len(), e.Processed)
}
