package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestEventHeapOrdering drives the 4-ary heap against a reference
// priority queue (a slice kept sorted by (at, seq)) through a random
// interleaving of pushes and pops, demanding pointer-identical results
// on every pop and peek — the exact order the engine's determinism
// contract depends on.
func TestEventHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		var h eventHeap
		var ref []*Event
		refInsert := func(e *Event) {
			i := sort.Search(len(ref), func(i int) bool { return eventBefore(e, ref[i]) })
			ref = append(ref, nil)
			copy(ref[i+1:], ref[i:])
			ref[i] = e
		}
		n := rng.Intn(500) + 1
		seq := uint64(0)
		for i := 0; i < n; i++ {
			e := &Event{at: Time(rng.Intn(50)), seq: seq, fn: func() {}}
			seq++
			h.push(e)
			refInsert(e)
			if rng.Intn(4) == 0 && h.len() > 0 {
				if got, want := h.peek(), ref[0]; got != want {
					t.Fatalf("trial %d: peek = (at=%v seq=%d), want (at=%v seq=%d)",
						trial, got.at, got.seq, want.at, want.seq)
				}
				got, want := h.pop(), ref[0]
				ref = ref[1:]
				if got != want {
					t.Fatalf("trial %d: pop = (at=%v seq=%d), want (at=%v seq=%d)",
						trial, got.at, got.seq, want.at, want.seq)
				}
			}
		}
		for h.len() > 0 {
			got, want := h.pop(), ref[0]
			ref = ref[1:]
			if got != want {
				t.Fatalf("trial %d: drain pop = (at=%v seq=%d), want (at=%v seq=%d)",
					trial, got.at, got.seq, want.at, want.seq)
			}
		}
		if len(ref) != 0 {
			t.Fatalf("trial %d: heap drained but reference holds %d events", trial, len(ref))
		}
	}
}

// TestEngineOrderingMatchesSortedReplay schedules a random mix of
// events (duplicate times, cancellations, re-entrant scheduling) and
// checks the engine fires them in exactly (at, seq) order with
// cancelled events skipped — the contract the old container/heap queue
// provided.
func TestEngineOrderingMatchesSortedReplay(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eng := NewEngine(seed)
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		var all []*Event
		n := 300
		seq := 0
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(40)) * time.Millisecond
			id := seq
			seq++
			ev := eng.ScheduleAt(at, func() {
				fired = append(fired, rec{eng.Now(), id})
				// Occasionally schedule re-entrantly, as protocol code does.
				if len(fired)%17 == 0 {
					nid := seq
					seq++
					at2 := eng.Now() + Time(rng.Intn(5))*time.Millisecond
					all = append(all, eng.ScheduleAt(at2, func() {
						fired = append(fired, rec{eng.Now(), nid})
					}))
				}
			})
			all = append(all, ev)
		}
		// Cancel a random subset before running.
		cancelled := make(map[*Event]bool)
		for _, ev := range all[:n] {
			if rng.Intn(5) == 0 {
				ev.Cancel()
				cancelled[ev] = true
			}
		}
		eng.Run()
		// Fire order must be non-decreasing in time, and ties must fire
		// in scheduling order (ids increase within one instant for the
		// non-re-entrant prefix population).
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				t.Fatalf("seed %d: time went backwards: %v after %v", seed, fired[i].at, fired[i-1].at)
			}
		}
		for _, ev := range all {
			if cancelled[ev] && !ev.Cancelled() {
				t.Fatalf("seed %d: cancelled event lost its flag", seed)
			}
		}
		if eng.Pending() != 0 {
			t.Fatalf("seed %d: %d events left pending", seed, eng.Pending())
		}
	}
}

// TestEventHeapSteadyStateZeroAlloc pins the optimization goal: once
// the backing array has reached its high-water mark, push and pop
// allocate nothing (the old container/heap path boxed every element
// through an interface on exactly this loop).
func TestEventHeapSteadyStateZeroAlloc(t *testing.T) {
	var h eventHeap
	const n = 64
	evs := make([]*Event, n)
	for i := range evs {
		evs[i] = &Event{at: Time(i * 7 % 13), seq: uint64(i), fn: func() {}}
	}
	// Warm to the high-water mark.
	for _, e := range evs {
		h.push(e)
	}
	for h.len() > 0 {
		h.pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, e := range evs {
			h.push(e)
		}
		for h.len() > 0 {
			h.pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("push/pop allocates %v per cycle at steady state, want 0", allocs)
	}
}

// BenchmarkEventQueue measures the scheduler's core loop: schedule a
// window of events, drain it, repeat — the pattern every netsim
// delivery and protocol timer follows. allocs/op isolates the Event
// allocation itself (one per Schedule; the heap adds zero).
func BenchmarkEventQueue(b *testing.B) {
	const window = 256
	eng := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < window; j++ {
			eng.Schedule(Time(j%29)*time.Microsecond, fn)
		}
		eng.Run()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)*window/s, "events/s")
	}
}
