package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Millisecond, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(2*time.Millisecond, func() { fired = true })
	e.Schedule(time.Millisecond, func() { ev.Cancel() })
	e.Run()
	if fired {
		t.Fatal("event fired despite cancellation by earlier event")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine(1)
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
}

func TestRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(time.Minute)
	if e.Now() != time.Minute {
		t.Fatalf("Now = %v, want 1m", e.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.Schedule(time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 99*time.Millisecond {
		t.Fatalf("Now = %v, want 99ms", e.Now())
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {
		ev := e.Schedule(-5*time.Second, func() {})
		if ev.At() != e.Now() {
			t.Fatalf("negative delay scheduled at %v, want %v", ev.At(), e.Now())
		}
	})
	e.Run()
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("count = %d, want 4 (Stop should halt dispatch)", count)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(time.Millisecond, func() { count++ })
	e.Schedule(2*time.Millisecond, func() { count++ })
	if !e.Step() || count != 1 {
		t.Fatalf("first Step: count = %d, want 1", count)
	}
	if !e.Step() || count != 2 {
		t.Fatalf("second Step: count = %d, want 2", count)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewEngine(42), NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

// Property: for any set of delays, events fire in nondecreasing time
// order and the engine visits every event exactly once.
func TestPropertyFiringOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(7)
		var fired []Time
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Microsecond, func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnNilCallback(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil callback")
		}
	}()
	NewEngine(1).Schedule(0, nil)
}

func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if e.Pending() > 10000 {
			e.Run()
		}
	}
	e.Run()
}
