package sim

// eventHeap is a concrete 4-ary min-heap of events ordered by
// (at, seq). It replaces the container/heap eventQueue: the generic
// heap paid an interface conversion on every Push/Pop and a binary
// tree twice as deep, and every scenario run pays millions of
// pops. A 4-ary layout halves the tree depth (sift-down compares up to
// four children per level but touches adjacent memory), and the
// concrete element type keeps push/pop free of interface boxing and of
// allocations at steady state — the backing slice only grows when the
// pending-event high-water mark does.
type eventHeap struct{ evs []*Event }

// heapArity is the branching factor. Child c of node i is
// heapArity*i+1+c; the parent of node i is (i-1)/heapArity.
const heapArity = 4

// eventBefore is the queue order: earliest fire time first, ties broken
// by scheduling order so a run is fully reproducible.
func eventBefore(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) len() int { return len(h.evs) }

// peek returns the next event without removing it. Caller checks len.
func (h *eventHeap) peek() *Event { return h.evs[0] }

func (h *eventHeap) push(e *Event) {
	h.evs = append(h.evs, e)
	i := len(h.evs) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !eventBefore(h.evs[i], h.evs[p]) {
			break
		}
		h.evs[i], h.evs[p] = h.evs[p], h.evs[i]
		i = p
	}
}

// pop removes and returns the earliest event.
//
// aitf:noalloc
func (h *eventHeap) pop() *Event {
	n := len(h.evs)
	root := h.evs[0]
	last := h.evs[n-1]
	h.evs[n-1] = nil // release the reference so fired events can be GC'd
	h.evs = h.evs[:n-1]
	if n > 1 {
		h.evs[0] = last
		h.siftDown(0)
	}
	return root
}

// siftDown restores heap order below node i.
//
// aitf:noalloc
func (h *eventHeap) siftDown(i int) {
	n := len(h.evs)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventBefore(h.evs[c], h.evs[min]) {
				min = c
			}
		}
		if !eventBefore(h.evs[min], h.evs[i]) {
			return
		}
		h.evs[i], h.evs[min] = h.evs[min], h.evs[i]
		i = min
	}
}
