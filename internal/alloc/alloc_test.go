package alloc

import (
	"testing"
	"time"

	"aitf/internal/filter"
	"aitf/internal/flow"
)

// pairTraffic is a fixed in-memory Traffic view for tests.
type pairTraffic struct {
	pairs []pair
	base  map[flow.Addr]float64
}

type pair struct {
	src, dst flow.Addr
	bytes    uint64
	flagged  bool
}

func (t pairTraffic) Pairs(visit func(src, dst flow.Addr, bytes uint64, flagged bool)) {
	for _, p := range t.pairs {
		visit(p.src, p.dst, p.bytes, p.flagged)
	}
}

func (t pairTraffic) BaselineBps(dst flow.Addr) float64 { return t.base[dst] }

func entry(src flow.Addr, dst flow.Addr, exp filter.Time) filter.Entry {
	return filter.Entry{Label: flow.PairLabel(src, dst), ExpiresAt: exp}
}

func TestPolicyLens(t *testing.T) {
	if got := (Policy{}).Lens(); len(got) != len(DefaultPrefixLens) {
		t.Fatalf("default lens: %v", got)
	}
	got := Policy{PrefixLens: []uint8{24, 0, 16, 24, 32, 28, 99}}.Lens()
	want := []uint8{28, 24, 16}
	if len(got) != len(want) {
		t.Fatalf("lens %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lens %v, want %v (deepest first, degenerate dropped)", got, want)
		}
	}
}

// TestChooseAvoidsMeasuredLegitSender is the allocator's reason to
// exist: twelve attackers fill one /24, a measured legit sender lives
// in the same /24 but outside the attackers' /28s, and the allocator
// must free slots by covering the attackers at /28 — sparing the legit
// sender the fixed /24 policy would have blocked.
func TestChooseAvoidsMeasuredLegitSender(t *testing.T) {
	dst := flow.MakeAddr(10, 0, 0, 2)
	var entries []filter.Entry
	var traffic pairTraffic
	// Attackers 20.101.0.1..12: /28 groups 20.101.0.0/28 (1..12 → two
	// groups: .0/28 holds .1-.12? No: .1..15 in .0/28). Use 1..12, all
	// inside 20.101.0.0/28 except none — 1..12 < 16, one /28.
	for i := 1; i <= 12; i++ {
		src := flow.MakeAddr(20, 101, 0, byte(i))
		entries = append(entries, entry(src, dst, filter.Time(i)*time.Second))
		traffic.pairs = append(traffic.pairs, pair{src, dst, 3_000_000, true})
	}
	// The busy legit sender shares the /24 but not the /28.
	legit := flow.MakeAddr(20, 101, 0, 200)
	traffic.pairs = append(traffic.pairs, pair{legit, dst, 500_000, false})

	cfg := Config{Policy: Policy{PrefixLens: []uint8{28, 24}}, Traffic: traffic}
	plan := Choose(entries, 11, cfg)
	if plan.Freed < 11 {
		t.Fatalf("plan freed %d, want ≥ 11: %+v", plan.Freed, plan)
	}
	if len(plan.Picks) != 1 {
		t.Fatalf("want the single /28 pick, got %d picks", len(plan.Picks))
	}
	pick := plan.Picks[0]
	if pick.Aggregate.SrcPrefixLen != 28 {
		t.Fatalf("picked /%d, want /28 (the /24 would block the legit sender): %+v",
			pick.Aggregate.SrcPrefixLen, pick.Aggregate)
	}
	if pick.Aggregate.CoversSrc(legit) {
		t.Fatalf("pick %v covers the legit sender", pick.Aggregate)
	}
	if pick.LegitBytes != 0 || pick.Measured {
		t.Fatalf("the /28 pick should price zero collateral, got %+v", pick)
	}
	if plan.CollateralBytes != 0 {
		t.Fatalf("plan collateral %v, want 0", plan.CollateralBytes)
	}

	// The same entries under the fixed /24 grouping price the legit
	// sender's bytes as collateral — Assess makes that visible.
	g24 := filter.SiblingGroups(entries, 24, 2)[0]
	c24 := Assess(g24, cfg)
	if !c24.Measured || c24.LegitBytes != 500_000 {
		t.Fatalf("/24 assessment %+v, want 500000 measured collateral bytes", c24)
	}
}

// TestChooseSpansLengths: when one /28 cannot free enough slots, the
// allocator mixes lengths — deeper where it suffices, wider where the
// pressure demands it — instead of failing or jumping straight to /16.
func TestChooseSpansLengths(t *testing.T) {
	dst := flow.MakeAddr(10, 0, 0, 2)
	var entries []filter.Entry
	// Two /28-sibling clusters in different /24s of the same /16.
	for i := 1; i <= 6; i++ {
		entries = append(entries, entry(flow.MakeAddr(20, 101, 0, byte(i)), dst, time.Minute))
		entries = append(entries, entry(flow.MakeAddr(20, 101, 7, byte(i)), dst, time.Minute))
	}
	cfg := Config{Policy: Policy{PrefixLens: []uint8{28, 24, 16}}}
	plan := Choose(entries, 10, cfg)
	if plan.Freed < 10 {
		t.Fatalf("plan freed %d, want ≥ 10: %+v", plan.Freed, plan)
	}
	if len(plan.Picks) != 2 {
		t.Fatalf("want two /28 picks, got %+v", plan.Picks)
	}
	for _, p := range plan.Picks {
		if p.Aggregate.SrcPrefixLen != 28 {
			t.Fatalf("pick /%d, want /28 (no measurements → deepest wins)", p.Aggregate.SrcPrefixLen)
		}
	}
	// Needing more than the /28s can free forces the wider prefix.
	wide := Choose(entries, 11, cfg)
	if wide.Freed < 11 {
		t.Fatalf("wide plan freed %d, want ≥ 11: %+v", wide.Freed, wide)
	}
	seen16 := false
	for _, p := range wide.Picks {
		if p.Aggregate.SrcPrefixLen == 16 {
			seen16 = true
		}
	}
	if !seen16 {
		t.Fatalf("freeing 11 slots from two /28 clusters needs the /16: %+v", wide.Picks)
	}
}

// TestChooseOverlapIsAbsorption: picks may nest only in apply order —
// a later, wider pick must list the earlier aggregate among its
// children (the table folds it like any entry, refunding its slot), so
// no slot is ever spent twice on the same offenders.
func TestChooseOverlapIsAbsorption(t *testing.T) {
	dst := flow.MakeAddr(10, 0, 0, 2)
	var entries []filter.Entry
	for i := 1; i <= 14; i++ {
		entries = append(entries, entry(flow.MakeAddr(20, 101, 0, byte(i)), dst, time.Minute))
	}
	for i := 1; i <= 3; i++ {
		entries = append(entries, entry(flow.MakeAddr(20, 101, 7, byte(i)), dst, time.Minute))
	}
	plan := Choose(entries, 100, Config{Policy: Policy{PrefixLens: []uint8{28, 24, 16}}})
	for i, a := range plan.Picks {
		for j, b := range plan.Picks {
			if i == j || !overlaps(a.Aggregate, b.Aggregate) {
				continue
			}
			if j < i {
				continue // checked from the other side
			}
			// Overlap is only legal as later-absorbs-earlier.
			if !b.Aggregate.Covers(a.Aggregate) {
				t.Fatalf("pick %d (%v) overlaps later pick %d (%v) without covering it",
					i, a.Aggregate, j, b.Aggregate)
			}
			absorbed := false
			for _, cl := range b.ChildLabels() {
				if cl == a.Aggregate {
					absorbed = true
				}
			}
			if !absorbed {
				t.Fatalf("wider pick %v does not absorb earlier pick %v as a child",
					b.Aggregate, a.Aggregate)
			}
		}
	}
}

// TestChooseBaselineFallback: with no measured pairs toward a
// destination, candidates are priced by its EWMA baseline scaled by
// covered share — so between two destinations' sibling groups the
// allocator aggregates the quiet destination first.
func TestChooseBaselineFallback(t *testing.T) {
	busy := flow.MakeAddr(10, 0, 0, 2)
	quiet := flow.MakeAddr(10, 0, 0, 3)
	var entries []filter.Entry
	for i := 1; i <= 4; i++ {
		entries = append(entries, entry(flow.MakeAddr(20, 101, 0, byte(i)), busy, time.Minute))
		entries = append(entries, entry(flow.MakeAddr(20, 102, 0, byte(i)), quiet, time.Minute))
	}
	traffic := pairTraffic{base: map[flow.Addr]float64{busy: 1e12, quiet: 1e3}}
	plan := Choose(entries, 3, Config{Policy: Policy{PrefixLens: []uint8{24}}, Traffic: traffic})
	if len(plan.Picks) != 1 || plan.Picks[0].Aggregate.Dst != quiet {
		t.Fatalf("want the quiet destination aggregated first, got %+v", plan.Picks)
	}
	if plan.Picks[0].Measured {
		t.Fatalf("baseline pricing must not claim measurement: %+v", plan.Picks[0])
	}
	if plan.CollateralBytes <= 0 {
		t.Fatalf("baseline pricing produced no collateral estimate: %+v", plan)
	}
}

// TestChooseDeterministic: equal inputs in different orders give the
// same plan — Choose runs inside the deterministic simulator.
func TestChooseDeterministic(t *testing.T) {
	dst := flow.MakeAddr(10, 0, 0, 2)
	var entries []filter.Entry
	for i := 1; i <= 9; i++ {
		entries = append(entries, entry(flow.MakeAddr(20, 101, byte(i%3), byte(i)), dst, time.Minute))
	}
	cfg := Config{Policy: Policy{PrefixLens: []uint8{28, 24}}}
	a := Choose(entries, 4, cfg)
	rev := make([]filter.Entry, len(entries))
	for i, e := range entries {
		rev[len(entries)-1-i] = e
	}
	b := Choose(rev, 4, cfg)
	if len(a.Picks) != len(b.Picks) || a.Freed != b.Freed ||
		a.CollateralBytes != b.CollateralBytes || a.CoveredAddrs != b.CoveredAddrs {
		t.Fatalf("order-dependent plans:\n%+v\n%+v", a, b)
	}
	for i := range a.Picks {
		if a.Picks[i].Aggregate != b.Picks[i].Aggregate {
			t.Fatalf("pick %d differs: %v vs %v", i, a.Picks[i].Aggregate, b.Picks[i].Aggregate)
		}
	}
}

func TestChooseEdgeCases(t *testing.T) {
	dst := flow.MakeAddr(10, 0, 0, 2)
	entries := []filter.Entry{entry(flow.MakeAddr(20, 101, 0, 1), dst, time.Minute)}
	if p := Choose(entries, 0, Config{}); len(p.Picks) != 0 {
		t.Fatalf("need 0 produced picks: %+v", p)
	}
	if p := Choose(nil, 3, Config{}); len(p.Picks) != 0 {
		t.Fatalf("empty table produced picks: %+v", p)
	}
	// A lone entry cannot aggregate: empty plan, caller handles it.
	if p := Choose(entries, 3, Config{}); p.Freed != 0 {
		t.Fatalf("singleton aggregated: %+v", p)
	}
}
