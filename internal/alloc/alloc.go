// Package alloc chooses which covering prefix filters a gateway should
// install when its wire-speed filter table is full — the collateral-
// aware refinement of the §IV coarse-filter fallback. Where the fixed
// policy (filter.SiblingGroups at one configured length) is blind to
// how much legitimate traffic an aggregate blocks, this allocator
// scores candidate prefixes at multiple lengths by *estimated
// collateral legit bytes* — per-pair byte estimates and per-destination
// EWMA baselines from internal/detect, with covered-address count as
// the fallback when nothing is measured — and picks, by greedy weighted
// set-cover, the candidate set that frees the required slots at minimum
// collateral. This is the "Optimal Filtering for DDoS Attacks"
// objective (min legit bytes filtered given N slots) applied to AITF's
// aggregation endgame; re-running Choose each detection window gives
// the adaptive re-allocation of "Adaptive Distributed Filtering".
package alloc

import (
	"sort"

	"aitf/internal/detect"
	"aitf/internal/filter"
	"aitf/internal/flow"
)

// DefaultPrefixLens are the candidate source prefix lengths tried when
// a Policy does not name its own, deepest (least collateral) first.
var DefaultPrefixLens = []uint8{28, 26, 24, 22, 20, 18, 16}

// Policy is the deployable allocator configuration — the serializable
// subset shared by the simulator gateway, the wire daemon's JSON
// config, and the scenario harness. The zero value means "allocator
// enabled with defaults" wherever a *Policy is non-nil.
type Policy struct {
	// PrefixLens are the candidate source prefix lengths, each tried
	// for every destination under pressure. Empty means
	// DefaultPrefixLens. Values outside [1, 31] are ignored.
	PrefixLens []uint8
	// MinChildren is the minimum sibling count that justifies an
	// aggregate (below 2 is raised to 2, as in filter.SiblingGroups).
	MinChildren int
}

// Lens returns the policy's candidate lengths, normalised: defaults
// applied, degenerate lengths dropped, de-duplicated, deepest first.
func (p Policy) Lens() []uint8 {
	src := p.PrefixLens
	if len(src) == 0 {
		src = DefaultPrefixLens
	}
	seen := [33]bool{}
	out := make([]uint8, 0, len(src))
	for _, l := range src {
		if l < 1 || l > 31 || seen[l] {
			continue
		}
		seen[l] = true
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// Traffic is the allocator's view of recent traffic, used to price
// candidates in legitimate bytes rather than covered addresses.
type Traffic interface {
	// Pairs visits the measured heavy source→destination pairs of the
	// current detection window with their byte estimates and whether
	// detection flagged them as attack traffic.
	Pairs(visit func(src, dst flow.Addr, bytes uint64, flagged bool))
	// BaselineBps is the long-run EWMA of traffic toward dst in
	// bytes/second, or 0 when the destination is unknown.
	BaselineBps(dst flow.Addr) float64
}

// Config parameterises one Choose call: the deployable Policy plus the
// live traffic view and scoring knobs.
type Config struct {
	Policy
	// Traffic prices candidates in estimated legit bytes; nil degrades
	// every candidate to the covered-address fallback.
	Traffic Traffic
	// WindowSeconds converts BaselineBps into bytes-per-window for
	// destinations with a baseline but no measured pairs (default
	// 0.25, the detect engine's default window).
	WindowSeconds float64
	// AddrCost is the score charged per covered source address — the
	// universal tie-break that makes deeper prefixes win whenever
	// measurements cannot separate candidates (default 1).
	AddrCost float64
}

func (c Config) windowSeconds() float64 {
	if c.WindowSeconds > 0 {
		return c.WindowSeconds
	}
	return 0.25
}

func (c Config) addrCost() float64 {
	if c.AddrCost > 0 {
		return c.AddrCost
	}
	return 1
}

// Candidate is one scored aggregation option: a sibling group plus its
// estimated collateral price.
type Candidate struct {
	filter.SiblingGroup
	// LegitBytes is the estimated legitimate traffic the aggregate
	// would block, in bytes per detection window: the sum of measured
	// unflagged non-child pair estimates under the prefix, plus a
	// baseline-derived share for destinations with no measured pairs.
	LegitBytes float64
	// Measured reports whether LegitBytes includes any per-pair
	// measurement (false means pure fallback pricing).
	Measured bool
	// Score is the greedy ranking cost: LegitBytes plus
	// AddrCost × CoveredAddrs, so unmeasured candidates still prefer
	// the deepest prefix that does the job.
	Score float64
}

// Assess prices one sibling group against the traffic view. It is the
// single scoring rule: Choose ranks with it, and the gateway reuses it
// to account estimated-collateral-bytes for fixed-policy aggregates so
// both policies report comparable stats.
func Assess(g filter.SiblingGroup, cfg Config) Candidate {
	c := Candidate{SiblingGroup: g}
	covered := float64(g.CoveredAddrs())
	c.Score = cfg.addrCost() * covered
	if cfg.Traffic == nil {
		return c
	}
	children := make(map[flow.Addr]bool, len(g.Children))
	for _, ch := range g.Children {
		children[ch.Label.Src] = true
	}
	dst := g.Aggregate.Dst
	dstMeasured := false
	cfg.Traffic.Pairs(func(src, d flow.Addr, bytes uint64, flagged bool) {
		if d != dst {
			return
		}
		dstMeasured = true
		// Children are the offenders being filtered either way; their
		// bytes are not *collateral*. Flagged pairs are attack traffic.
		if flagged || children[src] || !g.Aggregate.CoversSrc(src) {
			return
		}
		c.LegitBytes += float64(bytes)
		c.Measured = true
	})
	if !dstMeasured {
		// No pair measurements toward this destination: charge its
		// legit baseline in proportion to the share of the source
		// space the aggregate blindly covers.
		frac := covered / float64(uint64(1)<<32)
		c.LegitBytes += cfg.Traffic.BaselineBps(dst) * cfg.windowSeconds() * frac
	}
	c.Score += c.LegitBytes
	return c
}

// Plan is the allocator's decision: the aggregates to install and the
// total price of installing them.
type Plan struct {
	// Picks are the chosen aggregates in pick order (cheapest
	// collateral-per-freed-slot first).
	Picks []Candidate
	// Freed is the net table slots the plan releases.
	Freed int
	// CollateralBytes is the summed estimated legit bytes the plan
	// blocks per detection window.
	CollateralBytes float64
	// CoveredAddrs is the summed source addresses the plan covers.
	CoveredAddrs int
}

// Choose picks the aggregate set freeing at least need slots at
// minimum estimated collateral, by greedy weighted set-cover over
// candidates generated at every configured prefix length: repeatedly
// take the candidate with the lowest Score per freed slot, drop the
// children it consumed (and any candidate overlapping it) from the
// rest, and re-price. A plan with Freed < need means the entries do
// not admit enough aggregation; the caller installs what it got and
// lives with the remaining pressure.
func Choose(entries []filter.Entry, need int, cfg Config) Plan {
	var plan Plan
	if need <= 0 || len(entries) == 0 {
		return plan
	}
	var cands []Candidate
	for _, bits := range cfg.Lens() {
		for _, g := range filter.SiblingGroups(entries, bits, cfg.MinChildren) {
			cands = append(cands, Assess(g, cfg))
		}
	}
	for plan.Freed < need && len(cands) > 0 {
		best := 0
		for i := 1; i < len(cands); i++ {
			if candLess(cands[i], cands[best]) {
				best = i
			}
		}
		pick := cands[best]
		plan.Picks = append(plan.Picks, pick)
		plan.Freed += pick.Freed()
		plan.CollateralBytes += pick.LegitBytes
		plan.CoveredAddrs += pick.CoveredAddrs()
		if plan.Freed >= need {
			break
		}
		consumed := make(map[flow.Label]bool, len(pick.Children))
		for _, ch := range pick.Children {
			consumed[ch.Label.Key()] = true
		}
		next := cands[:0]
		for _, c := range cands {
			// A candidate nested inside the pick has nothing left to
			// cover. A candidate *containing* the pick stays viable:
			// the installed aggregate becomes one of its children (the
			// table folds nested aggregates like any other entry), so
			// widening remains possible when deep picks cannot free
			// enough on their own.
			if pick.Aggregate.Covers(c.Aggregate) {
				continue
			}
			kept := c.Children[:0:0]
			for _, ch := range c.Children {
				if !consumed[ch.Label.Key()] {
					kept = append(kept, ch)
				}
			}
			if c.Aggregate.Covers(pick.Aggregate) {
				kept = append(kept, filter.Entry{Label: pick.Aggregate, ExpiresAt: pick.MaxExpiry})
			}
			min := cfg.MinChildren
			if min < 2 {
				min = 2
			}
			if len(kept) < min {
				continue
			}
			if len(kept) != len(c.Children) {
				g := filter.SiblingGroup{Aggregate: c.Aggregate, Children: kept}
				for _, ch := range kept {
					if ch.ExpiresAt > g.MaxExpiry {
						g.MaxExpiry = ch.ExpiresAt
					}
				}
				c = Assess(g, cfg)
			}
			next = append(next, c)
		}
		cands = next
	}
	return plan
}

// candLess ranks candidates for the greedy pick: lowest collateral per
// freed slot first, then most slots freed, then the deepest prefix,
// then label order — a strict total order so Choose is deterministic.
func candLess(a, b Candidate) bool {
	// Score/Freed comparison without division: cross-multiply.
	af, bf := float64(a.Freed()), float64(b.Freed())
	if l, r := a.Score*bf, b.Score*af; l != r {
		return l < r
	}
	if a.Freed() != b.Freed() {
		return a.Freed() > b.Freed()
	}
	if a.Aggregate.SrcPrefixLen != b.Aggregate.SrcPrefixLen {
		return a.Aggregate.SrcPrefixLen > b.Aggregate.SrcPrefixLen
	}
	return labelLess(a.Aggregate, b.Aggregate)
}

// overlaps reports whether two aggregate labels cover overlapping flow
// space (same destination, nested source prefixes) — installing both
// would double-spend slots on the same offenders.
func overlaps(a, b flow.Label) bool {
	return a.Dst == b.Dst && (a.Covers(b) || b.Covers(a))
}

// labelLess is a deterministic, allocation-free total order over
// labels (alloc's copy of filter.labelLess; both run on the
// table-pressure path where formatting per comparison is too dear).
func labelLess(a, b flow.Label) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.SrcPrefixLen != b.SrcPrefixLen {
		return a.SrcPrefixLen < b.SrcPrefixLen
	}
	if a.DstPrefixLen != b.DstPrefixLen {
		return a.DstPrefixLen < b.DstPrefixLen
	}
	if a.Proto != b.Proto {
		return a.Proto < b.Proto
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Wildcards < b.Wildcards
}

// DetectTraffic adapts a detect.Engine into the allocator's Traffic
// view: heavy-hitter pair estimates plus per-destination baselines.
type DetectTraffic struct {
	Eng *detect.Engine
}

// Pairs visits the engine's current heavy-hitter snapshot.
func (t DetectTraffic) Pairs(visit func(src, dst flow.Addr, bytes uint64, flagged bool)) {
	for _, h := range t.Eng.TopK() {
		visit(h.Src, h.Dst, h.Bytes, h.Flagged)
	}
}

// BaselineBps returns the destination's EWMA bandwidth.
func (t DetectTraffic) BaselineBps(dst flow.Addr) float64 {
	return t.Eng.Baseline(dst)
}
