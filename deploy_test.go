package aitf

import (
	"testing"
	"time"

	"aitf/internal/filter"
)

func TestReexportedHelpers(t *testing.T) {
	tm := DefaultTimers()
	if tm.T != time.Minute || tm.Ttmp != 600*time.Millisecond {
		t.Fatalf("DefaultTimers = %+v", tm)
	}
	c := DefaultEndHostContract()
	if c.R1 != 100 || c.R2 != 1 {
		t.Fatalf("DefaultEndHostContract = %+v", c)
	}
	p := Provision(c, tm)
	if p.ProtectedFlows != 6000 || p.VictimGatewayFilters != 60 ||
		p.VictimGatewayShadows != 6000 || p.AttackerGatewayFilters != 60 {
		t.Fatalf("Provision = %+v, want the paper's worked example", p)
	}
	if r := BandwidthReduction(1, 0, 50*time.Millisecond, time.Minute); r < 0.0008 || r > 0.0009 {
		t.Fatalf("BandwidthReduction = %v, want ≈0.00083", r)
	}
	a := MakeAddr(10, 1, 2, 3)
	if a.String() != "10.1.2.3" {
		t.Fatalf("MakeAddr/String = %q", a)
	}
	l := PairLabel(a, MakeAddr(10, 0, 0, 1))
	if l.Src != a {
		t.Fatalf("PairLabel = %+v", l)
	}
}

func TestOptionsDerivedCapacities(t *testing.T) {
	opt := DefaultOptions()
	// Derived per the paper: nv (60) + na toward the peer contract
	// (R2=100/s × 60 s = 6000) + na toward one client (60).
	if got := opt.filterCapacity(); got != 60+6000+60 {
		t.Fatalf("derived filter capacity = %d, want 6120", got)
	}
	if got := opt.shadowCapacity(); got != 6000 {
		t.Fatalf("derived shadow capacity = %d, want 6000", got)
	}
	opt.FilterCapacity = 7
	opt.ShadowCapacity = 9
	if opt.filterCapacity() != 7 || opt.shadowCapacity() != 9 {
		t.Fatal("explicit capacities not honoured")
	}
}

func TestDeploySharedGatewayEndToEnd(t *testing.T) {
	opt := DefaultOptions()
	dep := DeploySharedGateway(SharedGatewayOptions{
		Options:            opt,
		Attackers:          3,
		Victims:            2,
		AttackersCompliant: true,
	})
	if dep.Victim() != dep.Victims[0] {
		t.Fatal("Victim() accessor wrong")
	}
	// Attacker 0 floods both victims; both flows must be filtered at
	// the shared attacker gateway.
	for _, v := range dep.Victims {
		dep.Flood(dep.Attackers[0], v, 1.25e6).Launch()
	}
	dep.Run(5 * time.Second)

	if dep.AttackGW.Filters().Len() != 2 {
		t.Fatalf("attack gateway filters = %d, want 2 (one per victim):\n%s",
			dep.AttackGW.Filters().Len(), dep.Log)
	}
	if dep.Attackers[0].ActiveStopOrders() == 0 {
		t.Fatal("client holds no stop orders")
	}
	for _, v := range dep.Victims {
		if v.Meter.Idle() {
			t.Fatal("victim never saw the pre-filter leak")
		}
	}
}

func TestDeploymentAccessors(t *testing.T) {
	dep := DeployFigure1(DefaultOptions())
	if len(dep.Gateways) != 6 || len(dep.Hosts) != 2 {
		t.Fatalf("deployment has %d gateways, %d hosts", len(dep.Gateways), len(dep.Hosts))
	}
	if dep.Now() != 0 {
		t.Fatal("fresh deployment clock nonzero")
	}
	dep.Run(time.Second)
	if dep.Now() != time.Second {
		t.Fatalf("Now = %v after Run(1s)", dep.Now())
	}
	// Gateways know their configuration.
	g := dep.VictimGWs[0]
	if g.Config().Timers.T != time.Minute {
		t.Fatal("gateway config not propagated")
	}
	if g.Node().Name() != "v_gw1" {
		t.Fatalf("gateway bound to %s", g.Node().Name())
	}
}

func TestNoTraceOption(t *testing.T) {
	opt := DefaultOptions()
	opt.CollectTrace = false
	dep := DeployFigure1(opt)
	if dep.Log != nil {
		t.Fatal("log allocated despite CollectTrace=false")
	}
	fl := dep.Flood(dep.Attacker, dep.Victim, 1.25e6)
	fl.Launch()
	dep.Run(2 * time.Second) // must not panic without a tracer
	if dep.Victim.Meter.Idle() {
		t.Fatal("nothing simulated")
	}
}

func TestEvictionOptionPlumbed(t *testing.T) {
	opt := DefaultOptions()
	opt.Evict = filter.EvictSoonest
	opt.FilterCapacity = 2
	dep := DeployManyToOne(ManyToOneOptions{Options: opt, Attackers: 5, AttackersCompliant: true})
	for _, a := range dep.Attackers {
		dep.Flood(a, dep.Victim, 200_000).Launch()
	}
	dep.Run(3 * time.Second)
	st := dep.VictimGW.Filters().Stats()
	if st.Evicted == 0 {
		t.Fatalf("evict-soonest policy never evicted under pressure: %+v", st)
	}
}

func TestWantsAccessor(t *testing.T) {
	dep := DeployFigure1(DefaultOptions())
	fl := dep.Flood(dep.Attacker, dep.Victim, 1.25e6)
	fl.Launch()
	dep.Run(2 * time.Second)
	label := PairLabel(dep.Attacker.Node().Addr(), dep.Victim.Node().Addr())
	if !dep.Victim.Wants(label) {
		t.Fatal("victim should want the attack flow blocked")
	}
	other := PairLabel(MakeAddr(9, 9, 9, 9), dep.Victim.Node().Addr())
	if dep.Victim.Wants(other) {
		t.Fatal("victim wants a flow it never complained about")
	}
}

func TestSeedChangesInterleavingNotOutcome(t *testing.T) {
	run := func(seed int64) (string, uint64) {
		opt := DefaultOptions()
		opt.Seed = seed
		dep := DeployFigure1(opt)
		fl := dep.Flood(dep.Attacker, dep.Victim, 1.25e6)
		fl.Launch()
		dep.Run(3 * time.Second)
		where := ""
		if e, ok := dep.Log.First(EvFilterInstalled); ok {
			where = e.Node
		}
		return where, dep.Victim.Meter.Bytes
	}
	w1, _ := run(1)
	w2, _ := run(42)
	if w1 != "a_gw1" || w2 != "a_gw1" {
		t.Fatalf("protocol outcome depends on seed: %q vs %q", w1, w2)
	}
}
