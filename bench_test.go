// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see EXPERIMENTS.md). Each benchmark runs the corresponding
// experiment driver end to end — topology build, attack workload,
// protocol, measurement — and reports domain metrics alongside ns/op.
//
//	go test -bench=. -benchmem
//
// regenerates every experiment; `go run ./cmd/aitf-bench` prints the
// full tables instead.
package aitf_test

import (
	"strconv"
	"testing"
	"time"

	"aitf"
	"aitf/internal/attack"
	"aitf/internal/core"
	"aitf/internal/experiments"
	"aitf/internal/filter"
	"aitf/internal/sim"
)

// BenchmarkFigure1Escalation regenerates E1 (Figure 1, §II-D): the
// four escalation scenarios of the walk-through.
func BenchmarkFigure1Escalation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E1Figure1()
		if len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkEffectiveBandwidth regenerates E2 (§IV-A.1): the r ≈
// n(Td+Tr)/T sweeps. The measured-to-analytic ratio for n=1 is
// reported as a custom metric.
func BenchmarkEffectiveBandwidth(b *testing.B) {
	td, tr := 50*time.Millisecond, 50*time.Millisecond
	var last float64
	for i := 0; i < b.N; i++ {
		last = 0
		for n := 1; n <= 4; n++ {
			measured := experiments.E2Run(n, time.Minute, td, tr, aitf.VictimDriven)
			if n == 1 {
				last = measured / aitf.BandwidthReduction(1, td, tr, time.Minute)
			}
		}
	}
	b.ReportMetric(last, "r-measured/analytic")
}

// BenchmarkProtectedFlows regenerates E3 (§IV-A.2): Nv = R1·T.
func BenchmarkProtectedFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E3ProtectedFlows()
		if len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkVictimGatewayResources regenerates E4 (§IV-B): nv = R1·Ttmp
// and mv = R1·T.
func BenchmarkVictimGatewayResources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E4VictimGatewayResources()
		if len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkAttackerGatewayResources regenerates E5 (§IV-C/D): na = R2·T.
func BenchmarkAttackerGatewayResources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E5AttackerGatewayResources()
		if len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkOnOffAttack regenerates E6 (§II-B): shadow-cache ablation
// against a pulsing attacker.
func BenchmarkOnOffAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E6OnOffAblation()
		if len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkHandshakeSecurity regenerates E7 (§II-E/III-B): forged
// filtering requests die in the handshake.
func BenchmarkHandshakeSecurity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E7HandshakeSecurity()
		if len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkAITFvsPushback regenerates E8 (§V): the baseline comparison.
func BenchmarkAITFvsPushback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E8AITFvsPushback()
		if len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkContractPolicing regenerates E9 (§II-B): request-flood
// policing.
func BenchmarkContractPolicing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E9ContractPolicing()
		if len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkOneRound measures the protocol's end-to-end cost for a
// single cooperative round on Figure 1 — the latency-critical path.
func BenchmarkOneRound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dep := aitf.DeployFigure1(aitf.DefaultOptions())
		fl := dep.Flood(dep.Attacker, dep.Victim, 1.25e6)
		fl.Launch()
		dep.Run(2 * time.Second)
		if dep.Log.Count(aitf.EvFilterInstalled) == 0 {
			b.Fatal("round failed")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw packet-event throughput of
// the deployed Figure-1 network (packets forwarded per benchmark op).
func BenchmarkSimulatorThroughput(b *testing.B) {
	opt := aitf.DefaultOptions()
	opt.Detector = nil // pure forwarding
	dep := aitf.DeployFigure1(opt)
	fl := dep.Flood(dep.Attacker, dep.Victim, 1.25e6)
	fl.Launch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dep.Run(10 * time.Millisecond)
	}
}

// BenchmarkSimulatorThroughputBatched is BenchmarkSimulatorThroughput
// with netsim batch delivery on: same-instant arrivals at gateways are
// classified through the data plane's batch API (one lock round per
// batch) instead of per packet.
func BenchmarkSimulatorThroughputBatched(b *testing.B) {
	opt := aitf.DefaultOptions()
	opt.Detector = nil // pure forwarding
	opt.BatchDelivery = true
	dep := aitf.DeployFigure1(opt)
	fl := dep.Flood(dep.Attacker, dep.Victim, 1.25e6)
	fl.Launch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dep.Run(10 * time.Millisecond)
	}
}

// BenchmarkArmyScale measures a many-to-one deployment under a zombie
// army, by army size.
func BenchmarkArmyScale(b *testing.B) {
	for _, zombies := range []int{10, 50, 100} {
		b.Run("zombies="+strconv.Itoa(zombies), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := aitf.DefaultOptions()
				dep := aitf.DeployManyToOne(aitf.ManyToOneOptions{
					Options:            opt,
					Attackers:          zombies,
					AttackersCompliant: true,
				})
				army := &attack.Army{
					Zombies:       dep.Attackers,
					Dst:           dep.Victim.Node().Addr(),
					RatePerZombie: 100_000,
					PacketSize:    1000,
					Stagger:       time.Second,
				}
				army.Launch()
				dep.Run(3 * time.Second)
			}
		})
	}
}

// BenchmarkShadowModeAblation compares the three reappearance-handling
// modes on the same on-off attack (EXPERIMENTS.md ablation 1).
func BenchmarkShadowModeAblation(b *testing.B) {
	for _, mode := range []aitf.ShadowMode{aitf.VictimDriven, aitf.GatewayAuto, aitf.ShadowOff} {
		b.Run(mode.String(), func(b *testing.B) {
			var leak uint64
			for i := 0; i < b.N; i++ {
				opt := aitf.DefaultOptions()
				opt.ShadowMode = mode
				dep := aitf.DeployChain(aitf.ChainOptions{
					Options:        opt,
					Depth:          3,
					NonCooperative: map[int]bool{0: true},
				})
				fl := dep.Flood(dep.Attacker, dep.Victim, 1.25e6)
				fl.On = 300 * time.Millisecond
				fl.Off = time.Second
				fl.Launch()
				dep.Run(10 * time.Second)
				leak = dep.Victim.Meter.Bytes
			}
			b.ReportMetric(float64(leak)/1e3, "leakKB")
		})
	}
}

// BenchmarkTtmpSweep ablates the temporary-filter lifetime (EXPERIMENTS.md
// ablation 2): too small causes escalation storms and long-block
// fallbacks; larger is stable.
func BenchmarkTtmpSweep(b *testing.B) {
	for _, ttmp := range []time.Duration{300 * time.Millisecond, 600 * time.Millisecond, 1200 * time.Millisecond} {
		b.Run(ttmp.String(), func(b *testing.B) {
			var escalations int
			for i := 0; i < b.N; i++ {
				opt := aitf.DefaultOptions()
				opt.Timers.Ttmp = ttmp
				opt.Detector = func() core.Detector {
					return attack.NewDelayDetector(sim.Time(50 * time.Millisecond))
				}
				dep := aitf.DeployFigure1(opt)
				fl := dep.Flood(dep.Attacker, dep.Victim, 1.25e6)
				fl.Launch()
				dep.Run(5 * time.Second)
				escalations = dep.Log.Count(aitf.EvEscalated)
			}
			b.ReportMetric(float64(escalations), "escalations")
		})
	}
}

// BenchmarkEvictionPolicy ablates the filter table's full-table policy
// (EXPERIMENTS.md ablation 4) under table pressure.
func BenchmarkEvictionPolicy(b *testing.B) {
	for _, evict := range []bool{false, true} {
		name := "reject-new"
		if evict {
			name = "evict-soonest"
		}
		b.Run(name, func(b *testing.B) {
			var rejected uint64
			for i := 0; i < b.N; i++ {
				opt := aitf.DefaultOptions()
				opt.FilterCapacity = 4 // pressure: fewer filters than flows
				if evict {
					opt.Evict = filter.EvictSoonest
				}
				dep := aitf.DeployManyToOne(aitf.ManyToOneOptions{
					Options:            opt,
					Attackers:          12,
					AttackersCompliant: true,
				})
				army := &attack.Army{
					Zombies:       dep.Attackers,
					Dst:           dep.Victim.Node().Addr(),
					RatePerZombie: 100_000,
					PacketSize:    1000,
				}
				army.Launch()
				dep.Run(3 * time.Second)
				rejected = dep.VictimGW.Filters().Stats().Rejected
			}
			b.ReportMetric(float64(rejected), "rejected")
		})
	}
}
