package aitf

import (
	"fmt"
	"testing"
	"time"

	"aitf/internal/attack"
	"aitf/internal/core"
	"aitf/internal/sim"
)

// TestEscalationLadderDeepChain walks the full escalation ladder on a
// deep chain: five of six attacker-side gateways refuse, so the
// mechanism must climb round by round — four nodes at a time — until
// the sixth (cooperative) gateway finally pins the flow.
func TestEscalationLadderDeepChain(t *testing.T) {
	const depth = 6
	opt := DefaultOptions()
	// Deeper chains stretch the handshake; provision Ttmp accordingly
	// (§IV-B: "large enough to allow ... the 3-way handshake").
	opt.Timers.Ttmp = 2 * time.Second
	opt.Detector = func() core.Detector {
		return attack.NewDelayDetector(sim.Time(50 * time.Millisecond))
	}
	nonCoop := map[int]bool{}
	for i := 0; i < depth-1; i++ {
		nonCoop[i] = true
	}
	dep := DeployChain(ChainOptions{
		Options:        opt,
		Depth:          depth,
		NonCooperative: nonCoop,
	})
	fl := dep.Flood(dep.Attacker, dep.Victim, 1.25e6)
	fl.On = 500 * time.Millisecond
	fl.Off = opt.Timers.Ttmp + 500*time.Millisecond
	fl.Launch()
	dep.Run(45 * time.Second)

	// The flow must finally be blocked at the one cooperative gateway,
	// the furthest from the attacker.
	want := fmt.Sprintf("a_gw%d", depth)
	blocked := false
	for _, e := range dep.Log.OfKind(EvFilterInstalled) {
		if e.Node == want {
			blocked = true
		}
	}
	if !blocked {
		t.Fatalf("ladder never reached %s:\n%s", want, dep.Log)
	}
	// Each victim-side gateway participated in exactly its own rounds:
	// requests were seen by every victim-side gateway.
	for i, g := range dep.VictimGWs {
		if g.Stats().ReqReceived == 0 {
			t.Fatalf("v_gw%d never saw a request — ladder skipped a level", i+1)
		}
	}
	// Once pinned, the flow stays dead: no traffic in the last 10 s.
	if last := dep.Victim.Meter.Last(); dep.Now()-last < 10*time.Second {
		t.Fatalf("victim still receiving at %v (end %v)", last, dep.Now())
	}
}

// TestRoundsInvolveFourNodes verifies the paper's scaling argument
// (§II-B, §V): in any single round, only the requester, its gateway,
// the attack-side target and the attacker exchange protocol messages —
// gateways above the active round stay idle.
func TestRoundsInvolveFourNodes(t *testing.T) {
	opt := DefaultOptions()
	// Ttmp must cover the depth-4 handshake plus drain (§IV-B), or the
	// takeover check concludes round 1 failed and spuriously escalates.
	opt.Timers.Ttmp = 1400 * time.Millisecond
	dep := DeployChain(ChainOptions{Options: opt, Depth: 4})
	fl := dep.Flood(dep.Attacker, dep.Victim, 1.25e6)
	fl.Launch()
	dep.Run(5 * time.Second)

	// Round 1 succeeded (cooperative a_gw1): v_gw2..v_gw4 and
	// a_gw2..a_gw4 must have processed zero protocol messages.
	for i := 1; i < 4; i++ {
		if n := dep.VictimGWs[i].Stats().MsgProcessed; n != 0 {
			t.Fatalf("v_gw%d processed %d messages in a round-1-only run", i+1, n)
		}
		if n := dep.AttackGWs[i].Stats().MsgProcessed; n != 0 {
			t.Fatalf("a_gw%d processed %d messages in a round-1-only run", i+1, n)
		}
	}
	if dep.AttackGWs[0].Stats().MsgProcessed == 0 {
		t.Fatal("a_gw1 processed nothing — the round never ran")
	}
}

// TestEscalationPastMidChainNonCooperative: two non-cooperating
// gateways in the *middle* of a depth-4 chain (indexes 0 and 1 on the
// attacker side). The ladder must walk past both and pin the flow at
// a_gw3 — the first cooperative attacker-side gateway — while the
// nodes above the resolved round (v_gw4, a_gw4) never process a single
// protocol message.
func TestEscalationPastMidChainNonCooperative(t *testing.T) {
	const depth = 4
	opt := DefaultOptions()
	opt.Timers.Ttmp = 2 * time.Second // room for the deep-chain handshake
	dep := DeployChain(ChainOptions{
		Options:        opt,
		Depth:          depth,
		NonCooperative: map[int]bool{0: true, 1: true},
	})
	fl := dep.Flood(dep.Attacker, dep.Victim, 1.25e6)
	fl.Launch()
	dep.Run(20 * time.Second)

	installedAt := map[string]bool{}
	for _, e := range dep.Log.OfKind(EvFilterInstalled) {
		installedAt[e.Node] = true
	}
	if !installedAt["a_gw3"] {
		t.Fatalf("ladder never pinned the flow at a_gw3:\n%s", dep.Log)
	}
	if installedAt["a_gw1"] || installedAt["a_gw2"] {
		t.Fatalf("a non-cooperating gateway installed a filter: %v", installedAt)
	}
	// Every victim-side gateway up to the resolving round participated.
	for i := 0; i < 3; i++ {
		if dep.VictimGWs[i].Stats().ReqReceived == 0 {
			t.Fatalf("v_gw%d never saw a request — ladder skipped a level", i+1)
		}
	}
	// Gateways above the resolved round stayed idle (§II-B: four nodes
	// per round).
	if n := dep.VictimGWs[3].Stats().MsgProcessed; n != 0 {
		t.Fatalf("v_gw4 processed %d messages beyond the resolved round", n)
	}
	if n := dep.AttackGWs[3].Stats().MsgProcessed; n != 0 {
		t.Fatalf("a_gw4 processed %d messages beyond the resolved round", n)
	}
	// Once pinned, the victim stays quiet.
	if last := dep.Victim.Meter.Last(); dep.Now()-last < 8*time.Second {
		t.Fatalf("victim still receiving at %v (end %v)", last, dep.Now())
	}
}

// TestConcurrentEscalationFilterPressure: a dozen concurrent attacks
// against a victim gateway provisioned with only four wire-speed
// filters. The table must reject the overflow (RejectNew), never
// exceed its budget, and still protect against as many flows as it can
// hold — the §IV-B resource argument under deliberate starvation.
func TestConcurrentEscalationFilterPressure(t *testing.T) {
	const attackers = 12
	opt := DefaultOptions()
	opt.FilterCapacity = 4
	dep := DeployManyToOne(ManyToOneOptions{
		Options:   opt,
		Attackers: attackers,
	})
	for i, a := range dep.Attackers {
		fl := dep.Flood(a, dep.Victim, 3e5)
		fl.SrcPort = uint16(5000 + i)
		fl.Launch()
	}
	dep.Run(10 * time.Second)

	if n := dep.Log.Count(EvFilterRejected); n == 0 {
		t.Fatal("no filter rejections under 3x capacity pressure")
	}
	if n := dep.Log.Count(EvTempFilterInstalled); n == 0 {
		t.Fatal("no filters installed at all — protection collapsed entirely")
	}
	st := dep.VictimGW.DataPlane().FilterStats()
	if st.PeakOccupancy > opt.FilterCapacity {
		t.Fatalf("filter peak %d exceeded capacity %d", st.PeakOccupancy, opt.FilterCapacity)
	}
	if st.Rejected == 0 {
		t.Fatal("dataplane never rejected an install")
	}
	// The shadow cache (provisioned independently) kept every request.
	if dep.VictimGW.DataPlane().ShadowStats().PeakSize > dep.VictimGW.Config().ShadowCapacity {
		t.Fatal("shadow cache exceeded its budget")
	}
}

// TestEffectiveBandwidthScalesWithTr checks the r-formula's Tr
// dependence (§IV-A.1): halving the victim→gateway delay halves the
// per-round leak.
func TestEffectiveBandwidthScalesWithTr(t *testing.T) {
	run := func(tr time.Duration) float64 {
		opt := DefaultOptions()
		opt.Params.AccessDelay = tr
		opt.Detector = func() core.Detector {
			return attack.NewDelayDetector(sim.Time(10 * time.Millisecond))
		}
		dep := DeployChain(ChainOptions{
			Options:        opt,
			Depth:          3,
			NonCooperative: map[int]bool{0: true, 1: true, 2: true},
		})
		fl := dep.Flood(dep.Attacker, dep.Victim, 1.25e6)
		fl.On = 300 * time.Millisecond
		fl.Off = time.Second
		fl.Launch()
		dep.Run(30 * time.Second)
		return float64(dep.Victim.Meter.Bytes)
	}
	leakFast := run(10 * time.Millisecond)
	leakSlow := run(100 * time.Millisecond)
	if leakSlow <= leakFast {
		t.Fatalf("leak should grow with Tr: %v (10ms) vs %v (100ms)", leakFast, leakSlow)
	}
}

// TestPenaltyReleasesPeeringLink: after the worst-case disconnection,
// the peering link recovers when the penalty lapses, and a well-behaved
// flow can cross again.
func TestPenaltyReleasesPeeringLink(t *testing.T) {
	opt := DefaultOptions()
	opt.Timers.Penalty = 3 * time.Second
	dep := DeployChain(ChainOptions{
		Options:        opt,
		Depth:          1,
		NonCooperative: map[int]bool{0: true},
	})
	fl := dep.Flood(dep.Attacker, dep.Victim, 1.25e6)
	fl.Stop = 4 * time.Second // attack ends during the penalty
	fl.Launch()
	dep.Run(10 * time.Second)
	if dep.Log.Count(EvDisconnected) == 0 {
		t.Fatalf("worst case did not disconnect:\n%s", dep.Log)
	}

	// After the penalty, a fresh legitimate flow crosses the link.
	before := dep.Victim.Meter.Bytes
	fl2 := dep.Flood(dep.Attacker, dep.Victim, 10_000) // modest, undetected
	fl2.Start = dep.Now()
	fl2.Launch()
	dep.Run(3 * time.Second)
	if dep.Victim.Meter.Bytes <= before {
		t.Fatal("peering link still dead after the penalty lapsed")
	}
}
