// Command aitfd runs one AITF node (border router or end-host) over
// UDP, speaking the AITF wire format. A small JSON file describes the
// node, its neighbors, and its filtering contracts; a set of aitfd
// processes on one machine (or several) forms a live AITF deployment.
//
// Usage:
//
//	aitfd -config node.json [-log-level info]
//
// Configuration example (a victim's gateway):
//
//	{
//	  "role":   "gateway",
//	  "addr":   "10.0.0.1",
//	  "name":   "v_gw",
//	  "listen": "127.0.0.1:7001",
//	  "admin":  "127.0.0.1:9100",
//	  "book":   {"10.0.0.2": "127.0.0.1:7002", "10.9.0.1": "127.0.0.1:7003"},
//	  "routes": {"10.0.0.2": "10.0.0.2", "10.9.0.1": "10.9.0.1", "10.9.0.2": "10.9.0.1"},
//	  "gateway": {
//	    "clients": ["10.0.0.2"],
//	    "secret":  "vgw-secret",
//	    "t_ms":    60000,
//	    "ttmp_ms": 600
//	  }
//	}
//
// A host node instead carries a "host" object:
//
//	"host": {"gateway": "10.0.0.1", "detect_bps": 20000, "compliant": true}
//
// A gateway can also defend legacy (non-AITF) clients itself: with
// gateway-side detection configured, it runs a sketch-based
// heavy-hitter engine (internal/detect) on its data path and files
// filtering requests on the clients' behalf:
//
//	"gateway": {
//	  "clients":    ["10.0.0.2"],
//	  "secret":     "vgw-secret",
//	  "detect_bps": 30000,
//	  "detect_for": ["10.0.0.2"],
//	  "detect_window_ms": 250,
//	  "sketch_width": 1024, "sketch_depth": 4, "detect_topk": 128
//	}
//
// # Observability
//
// The "admin" key starts an HTTP listener serving the node's
// observability plane:
//
//	/metrics          Prometheus text exposition of every counter the
//	                  node keeps (aitf_dataplane_*, aitf_gateway_*,
//	                  aitf_host_*, aitf_detect_*, aitf_node_*)
//	/metrics.json     the same registry as a JSON snapshot
//	/healthz          JSON health: filter-table occupancy and drain
//	                  state; answers 503 once shutdown has begun
//	/trace            the bounded ring of structured protocol events
//	/debug/pprof/*    the standard net/http/pprof handlers
//
// Protocol milestones (detections, temp filter installs, handshakes,
// stop orders) are logged through log/slog at Info and retained in the
// /trace ring; chattier diagnostics appear at -log-level debug. On
// SIGTERM or SIGINT the daemon drains gracefully: /healthz flips to
// 503, the UDP socket stops accepting, and a final structured snapshot
// of the counters is logged before exit.
//
// # Crash/restart survival
//
// With "snapshot_path" set in the gateway object, the drain also
// writes the gateway's durable state — filter table, shadow cache,
// in-flight handshakes, counters — to that file, and the next boot
// restores it with every original deadline honored (downtime is
// charged against each entry's remaining lifetime), so a daemon
// restart mid-attack keeps filtering. "ctrl_max_attempts",
// "ctrl_rto_ms", and "ctrl_jitter" arm bounded control-plane
// retransmission with exponential backoff; receivers drop duplicate
// deliveries by transaction id, so retries never double-install a
// filter or double-count a handshake.
//
// See internal/wire.FileConfig for the full schema.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"aitf/internal/obs"
	"aitf/internal/wire"
)

func main() {
	cfgPath := flag.String("config", "", "path to the node's JSON configuration")
	logLevel := flag.String("log-level", "info", "slog level: debug, info, warn, or error")
	flag.Parse()
	if *cfgPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "aitfd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	d, err := start(*cfgPath, logger)
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigCh
	signal.Stop(sigCh)

	// Graceful drain: health flips to 503 first so a balancer stops
	// routing here, the socket stops accepting, and the final counter
	// snapshot goes out as one structured line.
	d.beginDrain()
	logger.Info("shutting down", append([]any{"signal", sig.String(), "node", d.name}, d.finalSnapshot()...)...)
	if err := d.Close(); err != nil {
		logger.Error("shutdown error", "err", err)
		os.Exit(1)
	}
}

// daemon is one running aitfd node plus its observability plane.
type daemon struct {
	name     string
	log      *slog.Logger
	registry *obs.Registry
	ring     *obs.Ring
	admin    *obs.AdminServer
	draining atomic.Bool

	// Exactly one of gw / host is non-nil.
	gw   *wire.Gateway
	host *wire.Host
}

// start loads the configuration and boots the described node with its
// metrics registry, trace ring, and (when configured) admin listener.
// Split from main so tests can drive the full config-to-socket-to-
// scrape path without signals.
func start(cfgPath string, logger *slog.Logger) (*daemon, error) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	cfg, err := wire.ParseFileConfig(raw)
	if err != nil {
		return nil, err
	}
	if logger == nil {
		logger = slog.Default()
	}
	d := &daemon{
		name:     cfg.Name,
		log:      logger,
		registry: obs.NewRegistry(),
		ring:     obs.NewRing(1024),
	}
	trace := obs.NewTrace(d.ring, logger)

	switch cfg.Role {
	case "gateway":
		gcfg, err := cfg.GatewayConfig(trace)
		if err != nil {
			return nil, err
		}
		g, err := wire.NewGateway(gcfg)
		if err != nil {
			return nil, err
		}
		// Restore-on-boot: with snapshot_path configured, a previous
		// drain's filters/shadows/pendings come back with their original
		// deadlines before the socket starts accepting.
		if snap, rerr := g.RestoreFromDisk(); rerr != nil {
			logger.Warn("snapshot restore failed, starting fresh", "node", cfg.Name, "err", rerr)
		} else if snap != nil {
			st := g.Stats()
			logger.Info("state restored from drain snapshot", "node", cfg.Name,
				"filters", st.FiltersRestored, "shadows", st.ShadowsRestored,
				"pendings", len(snap.Pendings))
		}
		g.RegisterMetrics(d.registry)
		g.Run()
		d.gw = g
		logger.Info("gateway listening", "node", cfg.Name, "addr", cfg.Addr, "udp", g.Node().UDPAddr().String())
	default: // "host"; ParseFileConfig rejects anything else
		hcfg, err := cfg.HostConfig(trace)
		if err != nil {
			return nil, err
		}
		h, err := wire.NewHost(hcfg)
		if err != nil {
			return nil, err
		}
		h.RegisterMetrics(d.registry)
		h.Run()
		d.host = h
		logger.Info("host listening", "node", cfg.Name, "addr", cfg.Addr, "udp", h.Node().UDPAddr().String())
	}

	if cfg.Admin != "" {
		admin := obs.NewAdminServer(d.registry, d.ring, d.health)
		if err := admin.Listen(cfg.Admin); err != nil {
			d.closeNode() //nolint:errcheck // admin bind failure is the reported error
			return nil, fmt.Errorf("admin listen %q: %w", cfg.Admin, err)
		}
		d.admin = admin
		logger.Info("admin listening", "node", cfg.Name, "http", admin.Addr())
	}
	return d, nil
}

// AdminAddr returns the bound admin address ("" when disabled).
func (d *daemon) AdminAddr() string {
	if d.admin == nil {
		return ""
	}
	return d.admin.Addr()
}

// health reports drain state and the data structures an operator
// watches for capacity: filter-table and shadow-cache occupancy.
func (d *daemon) health() obs.Health {
	h := obs.Health{Status: "ok", Details: map[string]any{}}
	if d.draining.Load() {
		h.Status, h.Draining = "draining", true
	}
	if d.gw != nil {
		dp := d.gw.DataPlane()
		h.Details["filters"] = dp.Len()
		h.Details["filter_capacity"] = dp.FilterCapacity()
		h.Details["shadow_entries"] = dp.ShadowLen()
		h.Details["shadow_capacity"] = dp.ShadowCapacity()
	}
	return h
}

// beginDrain marks the daemon as draining: /healthz answers 503 from
// the next scrape on.
func (d *daemon) beginDrain() { d.draining.Store(true) }

// finalSnapshot renders the node's headline counters as slog attrs for
// the shutdown line.
func (d *daemon) finalSnapshot() []any {
	if d.gw != nil {
		st := d.gw.Stats()
		dp := d.gw.DataPlane()
		return []any{
			"classified", dp.Classified(),
			"filter_drops", st.FilterDrops,
			"filters", dp.Len(),
			"handshakes_ok", st.HandshakesOK,
			"stop_orders", st.StopOrders,
			"detections", st.Detections,
		}
	}
	st := d.host.Stats()
	return []any{
		"bytes_received", st.BytesReceived,
		"requests_sent", st.RequestsSent,
		"stop_orders_received", st.StopOrdersReceived,
		"suppressed_sends", st.SuppressedSends,
	}
}

// closeNode shuts the wire node down.
func (d *daemon) closeNode() error {
	if d.gw != nil {
		return d.gw.Close()
	}
	return d.host.Close()
}

// Close stops the node (no more packets accepted) and then the admin
// listener, so a final scrape racing shutdown still gets an answer.
func (d *daemon) Close() error {
	err := d.closeNode()
	if d.admin != nil {
		if aerr := d.admin.Close(); err == nil {
			err = aerr
		}
	}
	return err
}
