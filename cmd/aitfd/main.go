// Command aitfd runs one AITF node (border router or end-host) over
// UDP, speaking the AITF wire format. A small JSON file describes the
// node, its neighbors, and its filtering contracts; a set of aitfd
// processes on one machine (or several) forms a live AITF deployment.
//
// Usage:
//
//	aitfd -config node.json
//
// Configuration example (a victim's gateway):
//
//	{
//	  "role":   "gateway",
//	  "addr":   "10.0.0.1",
//	  "name":   "v_gw",
//	  "listen": "127.0.0.1:7001",
//	  "book":   {"10.0.0.2": "127.0.0.1:7002", "10.9.0.1": "127.0.0.1:7003"},
//	  "routes": {"10.0.0.2": "10.0.0.2", "10.9.0.1": "10.9.0.1", "10.9.0.2": "10.9.0.1"},
//	  "gateway": {
//	    "clients": ["10.0.0.2"],
//	    "secret":  "vgw-secret",
//	    "t_ms":    60000,
//	    "ttmp_ms": 600
//	  }
//	}
//
// A host node instead carries a "host" object:
//
//	"host": {"gateway": "10.0.0.1", "detect_bps": 20000, "compliant": true}
//
// See internal/wire.FileConfig for the full schema.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"aitf/internal/wire"
)

func main() {
	log.SetFlags(log.Lmicroseconds)
	cfgPath := flag.String("config", "", "path to the node's JSON configuration")
	flag.Parse()
	if *cfgPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*cfgPath); err != nil {
		log.Fatalf("aitfd: %v", err)
	}
}

func run(cfgPath string) error {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	cfg, err := wire.ParseFileConfig(raw)
	if err != nil {
		return err
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)

	switch cfg.Role {
	case "gateway":
		gcfg, err := cfg.GatewayConfig(log.Printf)
		if err != nil {
			return err
		}
		g, err := wire.NewGateway(gcfg)
		if err != nil {
			return err
		}
		defer g.Close()
		g.Run()
		log.Printf("[%s] gateway %s listening on %v", cfg.Name, cfg.Addr, g.Node().UDPAddr())
	case "host":
		hcfg, err := cfg.HostConfig(log.Printf)
		if err != nil {
			return err
		}
		h, err := wire.NewHost(hcfg)
		if err != nil {
			return err
		}
		defer h.Close()
		h.Run()
		log.Printf("[%s] host %s listening on %v", cfg.Name, cfg.Addr, h.Node().UDPAddr())
	}
	<-done
	return nil
}
