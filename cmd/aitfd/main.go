// Command aitfd runs one AITF node (border router or end-host) over
// UDP, speaking the AITF wire format. A small JSON file describes the
// node, its neighbors, and its filtering contracts; a set of aitfd
// processes on one machine (or several) forms a live AITF deployment.
//
// Usage:
//
//	aitfd -config node.json
//
// Configuration example (a victim's gateway):
//
//	{
//	  "role":   "gateway",
//	  "addr":   "10.0.0.1",
//	  "name":   "v_gw",
//	  "listen": "127.0.0.1:7001",
//	  "book":   {"10.0.0.2": "127.0.0.1:7002", "10.9.0.1": "127.0.0.1:7003"},
//	  "routes": {"10.0.0.2": "10.0.0.2", "10.9.0.1": "10.9.0.1", "10.9.0.2": "10.9.0.1"},
//	  "gateway": {
//	    "clients": ["10.0.0.2"],
//	    "secret":  "vgw-secret",
//	    "t_ms":    60000,
//	    "ttmp_ms": 600
//	  }
//	}
//
// A host node instead carries a "host" object:
//
//	"host": {"gateway": "10.0.0.1", "detect_bps": 20000, "compliant": true}
//
// A gateway can also defend legacy (non-AITF) clients itself: with
// gateway-side detection configured, it runs a sketch-based
// heavy-hitter engine (internal/detect) on its data path and files
// filtering requests on the clients' behalf:
//
//	"gateway": {
//	  "clients":    ["10.0.0.2"],
//	  "secret":     "vgw-secret",
//	  "detect_bps": 30000,
//	  "detect_for": ["10.0.0.2"],
//	  "detect_window_ms": 250,
//	  "sketch_width": 1024, "sketch_depth": 4, "detect_topk": 128
//	}
//
// See internal/wire.FileConfig for the full schema.
package main

import (
	"flag"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"aitf/internal/wire"
)

func main() {
	log.SetFlags(log.Lmicroseconds)
	cfgPath := flag.String("config", "", "path to the node's JSON configuration")
	flag.Parse()
	if *cfgPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	node, err := start(*cfgPath, log.Printf)
	if err != nil {
		log.Fatalf("aitfd: %v", err)
	}
	defer node.Close()

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	<-done
}

// start loads the configuration and boots the described node, returning
// a handle that shuts it down. Split from main so tests can drive the
// full config-to-socket path without signals.
func start(cfgPath string, logf func(string, ...any)) (io.Closer, error) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	cfg, err := wire.ParseFileConfig(raw)
	if err != nil {
		return nil, err
	}
	switch cfg.Role {
	case "gateway":
		gcfg, err := cfg.GatewayConfig(logf)
		if err != nil {
			return nil, err
		}
		g, err := wire.NewGateway(gcfg)
		if err != nil {
			return nil, err
		}
		g.Run()
		logf("[%s] gateway %s listening on %v", cfg.Name, cfg.Addr, g.Node().UDPAddr())
		return g, nil
	default: // "host"; ParseFileConfig rejects anything else
		hcfg, err := cfg.HostConfig(logf)
		if err != nil {
			return nil, err
		}
		h, err := wire.NewHost(hcfg)
		if err != nil {
			return nil, err
		}
		h.Run()
		logf("[%s] host %s listening on %v", cfg.Name, cfg.Addr, h.Node().UDPAddr())
		return h, nil
	}
}
