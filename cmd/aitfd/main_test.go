package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
	"time"

	"aitf/internal/flow"
	"aitf/internal/obs"
	"aitf/internal/wire"
)

func writeCfg(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func discardLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

func TestStartGatewayFromJSON(t *testing.T) {
	path := writeCfg(t, "gw.json", `{
	  "role":   "gateway",
	  "addr":   "10.0.0.1",
	  "name":   "v_gw",
	  "listen": "127.0.0.1:0",
	  "book":   {"10.0.0.2": "127.0.0.1:7002"},
	  "routes": {"10.0.0.2": "10.0.0.2"},
	  "gateway": {
	    "clients": ["10.0.0.2"],
	    "secret":  "s",
	    "t_ms":    5000,
	    "ttmp_ms": 500,
	    "dataplane_shards": 4,
	    "workers": 2
	  }
	}`)
	node, err := start(path, discardLogger())
	if err != nil {
		t.Fatalf("start gateway: %v", err)
	}
	if addr := node.AdminAddr(); addr != "" {
		t.Fatalf("no admin configured but AdminAddr = %q", addr)
	}
	if err := node.Close(); err != nil {
		t.Fatalf("close gateway: %v", err)
	}
}

func TestStartHostFromJSON(t *testing.T) {
	path := writeCfg(t, "host.json", `{
	  "role":   "host",
	  "addr":   "10.0.0.2",
	  "name":   "victim",
	  "listen": "127.0.0.1:0",
	  "book":   {"10.0.0.1": "127.0.0.1:7001"},
	  "routes": {"10.0.0.1": "10.0.0.1"},
	  "host":   {"gateway": "10.0.0.1", "detect_bps": 20000, "compliant": true}
	}`)
	node, err := start(path, discardLogger())
	if err != nil {
		t.Fatalf("start host: %v", err)
	}
	if err := node.Close(); err != nil {
		t.Fatalf("close host: %v", err)
	}
}

func TestStartRejectsBadConfigs(t *testing.T) {
	cases := map[string]string{
		"not json":         `{`,
		"unknown role":     `{"role":"wizard","addr":"1.1.1.1"}`,
		"negative workers": `{"role":"gateway","addr":"1.1.1.1","gateway":{"workers":-3}}`,
		"negative shards":  `{"role":"gateway","addr":"1.1.1.1","gateway":{"dataplane_shards":-1}}`,
		"ttmp >= t":        `{"role":"gateway","addr":"1.1.1.1","gateway":{"t_ms":100,"ttmp_ms":200}}`,
		"one peer":         `{"role":"gateway","addr":"1.1.1.1","gateway":{"cluster_peers":1}}`,
		"fast merge":       `{"role":"gateway","addr":"1.1.1.1","gateway":{"cluster_peers":2,"cluster_merge_ms":50}}`,
	}
	for name, body := range cases {
		path := writeCfg(t, "bad.json", body)
		if _, err := start(path, discardLogger()); err == nil {
			t.Errorf("%s: accepted", name)
		} else if name != "not json" && !errors.Is(err, wire.ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", name, err)
		}
	}
}

func TestStartMissingFile(t *testing.T) {
	if _, err := start(filepath.Join(t.TempDir(), "nope.json"), discardLogger()); err == nil {
		t.Fatal("missing config accepted")
	}
}

func TestStartBadAdminAddr(t *testing.T) {
	path := writeCfg(t, "gw.json", `{
	  "role": "gateway", "addr": "10.0.0.1", "name": "g",
	  "listen": "127.0.0.1:0", "admin": "256.0.0.1:bad",
	  "gateway": {"secret": "s"}
	}`)
	if _, err := start(path, discardLogger()); err == nil {
		t.Fatal("unbindable admin address accepted")
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// metricValue extracts a scalar sample from Prometheus text exposition.
func metricValue(t *testing.T, expo, name string) float64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindStringSubmatch(expo)
	if m == nil {
		t.Fatalf("metric %s not found in exposition:\n%s", name, expo)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", name, m[1], err)
	}
	return v
}

// TestAdminEndpointLiveAttack boots a gateway (defending a legacy
// client with sketch detection) and an attacker host from temp JSON
// configs, floods the protected client through the gateway, and
// scrapes the gateway's admin endpoint while the attack runs: the
// exposition must parse, aitf_dataplane_classified_total must be
// present and monotone, and the attack must show up as detections and
// filter installs.
func TestAdminEndpointLiveAttack(t *testing.T) {
	// The attacker binds first so the gateway's book can point at it.
	attackerCfg := writeCfg(t, "attacker.json", `{
	  "role":   "host",
	  "addr":   "10.9.0.2",
	  "name":   "attacker",
	  "listen": "127.0.0.1:0",
	  "book":   {},
	  "routes": {"10.0.0.2": "10.0.0.1", "10.0.0.1": "10.0.0.1"},
	  "host":   {"gateway": "10.0.0.1", "compliant": true}
	}`)
	attacker, err := start(attackerCfg, discardLogger())
	if err != nil {
		t.Fatalf("start attacker: %v", err)
	}
	defer attacker.Close()
	attackerUDP := attacker.host.Node().UDPAddr().String()

	gwCfg := writeCfg(t, "gw.json", fmt.Sprintf(`{
	  "role":   "gateway",
	  "addr":   "10.0.0.1",
	  "name":   "gw",
	  "listen": "127.0.0.1:0",
	  "admin":  "127.0.0.1:0",
	  "book":   {"10.9.0.2": "%s"},
	  "routes": {"10.0.0.2": "10.9.0.2", "10.9.0.2": "10.9.0.2"},
	  "gateway": {
	    "secret":     "s",
	    "t_ms":       60000,
	    "ttmp_ms":    600,
	    "detect_bps": 1000,
	    "detect_for": ["10.0.0.2"],
	    "detect_window_ms": 50
	  }
	}`, attackerUDP))
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	gw, err := start(gwCfg, logger)
	if err != nil {
		t.Fatalf("start gateway: %v", err)
	}
	defer gw.Close()
	base := "http://" + gw.AdminAddr()
	if gw.AdminAddr() == "" {
		t.Fatal("gateway did not bind an admin listener")
	}

	// Point the attacker's book at the gateway's dynamic port.
	gwAddr := flow.MakeAddr(10, 0, 0, 1)
	attacker.host.Node().SetBook(wire.Book{gwAddr: gw.gw.Node().UDPAddr().String()})

	// Baseline scrape before any traffic.
	code, expo := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if err := obs.CheckExposition(expo); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	classified0 := metricValue(t, expo, "aitf_dataplane_classified_total")

	// Flood the protected legacy client through the gateway: ~1500B
	// per ms is far above the 1000 B/s detection threshold.
	victim := flow.MakeAddr(10, 0, 0, 2)
	deadline := time.Now().Add(5 * time.Second)
	detected := false
	for time.Now().Before(deadline) {
		for i := 0; i < 20; i++ {
			attacker.host.SendData(victim, flow.ProtoUDP, 4000, 80, 1500)
		}
		time.Sleep(5 * time.Millisecond)
		_, expo = httpGet(t, base+"/metrics")
		if metricValue(t, expo, "aitf_gateway_detections_total") >= 1 {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatalf("gateway never detected the flood; last exposition:\n%s", expo)
	}
	if err := obs.CheckExposition(expo); err != nil {
		t.Fatalf("mid-attack /metrics does not parse: %v", err)
	}
	classified1 := metricValue(t, expo, "aitf_dataplane_classified_total")
	if classified1 <= classified0 {
		t.Fatalf("classified_total not monotone under traffic: %v -> %v", classified0, classified1)
	}
	if installs := metricValue(t, expo, "aitf_dataplane_filters_installed_total"); installs < 1 {
		t.Fatalf("no filter installs after detection (installed_total = %v)", installs)
	}

	// /healthz reports occupancy and flips to 503 on drain.
	code, body := httpGet(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	for _, want := range []string{`"filters"`, `"filter_capacity"`, `"status": "ok"`} {
		if !regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(body) {
			t.Errorf("/healthz missing %s: %q", want, body)
		}
	}

	// pprof rides on the same listener.
	if code, body := httpGet(t, base+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}

	// /trace holds the protocol milestones of the round.
	if code, body := httpGet(t, base+"/trace"); code != http.StatusOK ||
		!regexp.MustCompile(`attack-detected`).MatchString(body) {
		t.Fatalf("/trace = %d, missing attack-detected: %q", code, body)
	}

	// Drain: health goes 503 before the node closes.
	gw.beginDrain()
	if code, body := httpGet(t, base+"/healthz"); code != http.StatusServiceUnavailable ||
		!regexp.MustCompile(`"draining": true`).MatchString(body) {
		t.Fatalf("draining /healthz = %d %q", code, body)
	}
	gw.log.Info("shutting down", append([]any{"signal", "SIGTERM", "node", gw.name}, gw.finalSnapshot()...)...)
	if err := gw.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	out := logBuf.String()
	for _, want := range []string{"shutting down", "signal=SIGTERM", "classified=", "detections="} {
		if !regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(out) {
			t.Errorf("shutdown log missing %q:\n%s", want, out)
		}
	}
}

// TestStartClusteredGateway boots a gateway running as a replica
// cluster from JSON and scrapes its admin endpoint: the aitf_cluster_*
// schema must be exposed and the exposition must stay parseable.
func TestStartClusteredGateway(t *testing.T) {
	path := writeCfg(t, "clu.json", `{
	  "role": "gateway", "addr": "10.0.0.1", "name": "clu_gw",
	  "listen": "127.0.0.1:0", "admin": "127.0.0.1:0",
	  "book": {}, "routes": {},
	  "gateway": {
	    "secret": "s",
	    "cluster_peers": 3,
	    "cluster_merge_ms": 250,
	    "cluster_replication": true,
	    "detect_bps": 1000,
	    "detect_for": ["10.0.0.2"]
	  }
	}`)
	d, err := start(path, discardLogger())
	if err != nil {
		t.Fatalf("start clustered gateway: %v", err)
	}
	defer d.Close()
	if d.gw.Cluster() == nil {
		t.Fatal("daemon gateway has no cluster overlay")
	}
	_, expo := httpGet(t, "http://"+d.AdminAddr()+"/metrics")
	if err := obs.CheckExposition(expo); err != nil {
		t.Fatalf("clustered /metrics does not parse: %v", err)
	}
	for _, want := range []string{
		"aitf_cluster_log_length",
		"aitf_cluster_merge_rounds_total",
		"aitf_cluster_merge_bytes_total",
		"aitf_cluster_failovers_total",
		"aitf_cluster_catchup_ops_total",
		"aitf_cluster_catchup_ns_total",
	} {
		if metricValue(t, expo, want) < 0 {
			t.Errorf("metric %s negative", want)
		}
	}
}

// TestHostFinalSnapshot covers the host leg of the shutdown line.
func TestHostFinalSnapshot(t *testing.T) {
	path := writeCfg(t, "host.json", `{
	  "role": "host", "addr": "10.0.0.2", "name": "h",
	  "listen": "127.0.0.1:0", "admin": "127.0.0.1:0",
	  "book": {}, "routes": {},
	  "host": {"gateway": "10.0.0.1", "compliant": true}
	}`)
	d, err := start(path, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	attrs := d.finalSnapshot()
	if len(attrs) == 0 || attrs[0] != "bytes_received" {
		t.Fatalf("host snapshot = %v", attrs)
	}
	if code, _ := httpGet(t, "http://"+d.AdminAddr()+"/metrics"); code != http.StatusOK {
		t.Fatalf("host /metrics status = %d", code)
	}
}

// TestDaemonRestartRestoresFilters drives the full snapshot-on-drain /
// restore-on-boot path through the daemon: a gateway with a
// snapshot_path is stopped mid-lifetime and booted again from the same
// config, and its filters come back with their deadlines intact.
func TestDaemonRestartRestoresFilters(t *testing.T) {
	dir := t.TempDir()
	cfgBody := fmt.Sprintf(`{
	  "role": "gateway", "addr": "10.0.0.1", "name": "g",
	  "listen": "127.0.0.1:0", "book": {}, "routes": {},
	  "gateway": {"secret": "s", "snapshot_path": %q,
	              "ctrl_max_attempts": 3, "ctrl_rto_ms": 50}
	}`, filepath.Join(dir, "gw.snapshot.json"))
	path := writeCfg(t, "gw.json", cfgBody)

	d, err := start(path, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	label := flow.PairLabel(flow.MakeAddr(20, 0, 0, 1), flow.MakeAddr(10, 0, 0, 2))
	dp := d.gw.DataPlane()
	if err := dp.Install(label, dp.Now(), dp.Now()+5*time.Second); err != nil {
		t.Fatal(err)
	}
	d.beginDrain()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := start(path, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	st := d2.gw.Stats()
	if st.SnapshotRestores != 1 || st.FiltersRestored != 1 {
		t.Fatalf("restart restored nothing: %+v", st)
	}
	if _, ok := d2.gw.Filters().Lookup(label, d2.gw.DataPlane().Now()); !ok {
		t.Fatal("filter missing after daemon restart")
	}
}
