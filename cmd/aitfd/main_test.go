package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"aitf/internal/wire"
)

func writeCfg(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func discard(string, ...any) {}

func TestStartGatewayFromJSON(t *testing.T) {
	path := writeCfg(t, "gw.json", `{
	  "role":   "gateway",
	  "addr":   "10.0.0.1",
	  "name":   "v_gw",
	  "listen": "127.0.0.1:0",
	  "book":   {"10.0.0.2": "127.0.0.1:7002"},
	  "routes": {"10.0.0.2": "10.0.0.2"},
	  "gateway": {
	    "clients": ["10.0.0.2"],
	    "secret":  "s",
	    "t_ms":    5000,
	    "ttmp_ms": 500,
	    "dataplane_shards": 4,
	    "workers": 2
	  }
	}`)
	node, err := start(path, discard)
	if err != nil {
		t.Fatalf("start gateway: %v", err)
	}
	if err := node.Close(); err != nil {
		t.Fatalf("close gateway: %v", err)
	}
}

func TestStartHostFromJSON(t *testing.T) {
	path := writeCfg(t, "host.json", `{
	  "role":   "host",
	  "addr":   "10.0.0.2",
	  "name":   "victim",
	  "listen": "127.0.0.1:0",
	  "book":   {"10.0.0.1": "127.0.0.1:7001"},
	  "routes": {"10.0.0.1": "10.0.0.1"},
	  "host":   {"gateway": "10.0.0.1", "detect_bps": 20000, "compliant": true}
	}`)
	node, err := start(path, discard)
	if err != nil {
		t.Fatalf("start host: %v", err)
	}
	if err := node.Close(); err != nil {
		t.Fatalf("close host: %v", err)
	}
}

func TestStartRejectsBadConfigs(t *testing.T) {
	cases := map[string]string{
		"not json":         `{`,
		"unknown role":     `{"role":"wizard","addr":"1.1.1.1"}`,
		"negative workers": `{"role":"gateway","addr":"1.1.1.1","gateway":{"workers":-3}}`,
		"negative shards":  `{"role":"gateway","addr":"1.1.1.1","gateway":{"dataplane_shards":-1}}`,
		"ttmp >= t":        `{"role":"gateway","addr":"1.1.1.1","gateway":{"t_ms":100,"ttmp_ms":200}}`,
	}
	for name, body := range cases {
		path := writeCfg(t, "bad.json", body)
		if _, err := start(path, discard); err == nil {
			t.Errorf("%s: accepted", name)
		} else if name != "not json" && !errors.Is(err, wire.ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", name, err)
		}
	}
}

func TestStartMissingFile(t *testing.T) {
	if _, err := start(filepath.Join(t.TempDir(), "nope.json"), discard); err == nil {
		t.Fatal("missing config accepted")
	}
}
