package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"aitf/internal/scenario"
)

// TestReplayRoundTrip: a spec dumped to JSON and replayed through the
// CLI path reproduces the exact same run (same fingerprint).
func TestReplayRoundTrip(t *testing.T) {
	spec := scenario.GenSpec(11)
	direct := scenario.Run(spec)

	path := filepath.Join(t.TempDir(), "spec.json")
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	specs, err := collectSpecs(0, 0, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("replay produced %d specs", len(specs))
	}
	replayed := scenario.Run(specs[0])
	if replayed.Fingerprint != direct.Fingerprint {
		t.Fatalf("replay diverged: %016x vs %016x", replayed.Fingerprint, direct.Fingerprint)
	}
}

func TestCollectSpecsSweep(t *testing.T) {
	specs, err := collectSpecs(5, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].Seed != 5 || specs[2].Seed != 7 {
		t.Fatalf("sweep specs wrong: %+v", specs)
	}
}

func TestCollectSpecsBadReplayFile(t *testing.T) {
	if _, err := collectSpecs(0, 0, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing replay file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := collectSpecs(0, 0, bad); err == nil {
		t.Fatal("unparsable replay file accepted")
	}
}

func TestSpecPathPerSeed(t *testing.T) {
	if got := specPath("f.json", 10, 1); got != "f.json" {
		t.Fatalf("single run: %q", got)
	}
	if got := specPath("f.json", 10, 5); got != "f.seed10.json" {
		t.Fatalf("sweep: %q", got)
	}
	if got := specPath("fail", 3, 2); got != "fail.seed3" {
		t.Fatalf("no extension: %q", got)
	}
	if got := specPath("", 3, 2); got != "" {
		t.Fatalf("empty path: %q", got)
	}
}

// TestRunReportsFailure: run() must return an error when a scenario
// fails, and nil when all pass. A guaranteed-failing scenario is hard
// to construct by seed (that is the point of the harness), so only the
// passing path is exercised end to end here.
func TestRunReportsFailure(t *testing.T) {
	if err := run(1, 2, "", false, "", "", true, nil); err != nil {
		t.Fatalf("passing sweep reported error: %v", err)
	}
}

// TestRunWritesMetricsJSON: -metrics-json produces the aitfd
// /metrics.json snapshot shape with the sweep's aggregate counters.
func TestRunWritesMetricsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := run(1, 2, "", false, "", path, true, nil); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []struct {
		Name  string   `json:"name"`
		Kind  string   `json:"kind"`
		Value *float64 `json:"value,omitempty"`
	}
	if err := json.Unmarshal(raw, &snaps); err != nil {
		t.Fatalf("metrics snapshot is not JSON: %v\n%s", err, raw)
	}
	byName := map[string]*float64{}
	for _, s := range snaps {
		byName[s.Name] = s.Value
	}
	runs, ok := byName["aitf_scenario_runs_total"]
	if !ok || runs == nil || *runs != 2 {
		t.Fatalf("aitf_scenario_runs_total = %v, want 2 (snapshot: %s)", runs, raw)
	}
	if v, ok := byName["aitf_scenario_events_total"]; !ok || v == nil || *v == 0 {
		t.Fatalf("aitf_scenario_events_total missing or zero (snapshot: %s)", raw)
	}
}

// TestRunFaultOverride: the fault knobs replace the seed-drawn fault
// mix on every spec in the run, and the forced hostile network still
// holds every invariant.
func TestRunFaultOverride(t *testing.T) {
	faults := &scenario.FaultSpec{CtrlLossPct: 5, Retransmit: true, CrashVictimGW: true}
	if err := run(1, 3, "", false, "", "", true, faults); err != nil {
		t.Fatalf("forced-fault sweep failed: %v", err)
	}
}
