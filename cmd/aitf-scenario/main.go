// Command aitf-scenario runs seeded adversarial scenarios against the
// AITF implementation and checks the protocol invariants after each
// run (see internal/scenario). It is the CLI face of the property
// harness: run sweeps, replay a failing seed byte-identically, and
// minimize a failure to its smallest reproducing scenario.
//
// Usage:
//
//	aitf-scenario -seed 42               # run one scenario
//	aitf-scenario -seed 1 -n 100         # sweep seeds 1..100
//	aitf-scenario -seed 42 -minimize     # shrink a failing seed
//	aitf-scenario -replay failing.json   # re-run an exact spec
//	aitf-scenario -seed 42 -o spec.json  # dump the (failing) spec
//
// Exit status is 1 when any scenario violates an invariant. Every run
// is a pure function of its spec, so `-seed N` reproduces a failure
// exactly, and the JSON spec written with -o replays it on any
// machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"aitf/internal/scenario"
)

func main() {
	seed := flag.Int64("seed", 1, "base scenario seed")
	n := flag.Int("n", 1, "number of consecutive seeds to run")
	replay := flag.String("replay", "", "path to a JSON scenario spec to run instead of seeds")
	minimize := flag.Bool("minimize", false, "on failure, shrink the scenario while it still fails")
	out := flag.String("o", "", "write each failing spec as JSON here (sweeps splice the seed into the name)")
	quiet := flag.Bool("q", false, "only print failures")
	flag.Parse()

	if err := run(*seed, *n, *replay, *minimize, *out, *quiet); err != nil {
		fmt.Fprintf(os.Stderr, "aitf-scenario: %v\n", err)
		os.Exit(1)
	}
}

func run(seed int64, n int, replay string, minimize bool, out string, quiet bool) error {
	specs, err := collectSpecs(seed, n, replay)
	if err != nil {
		return err
	}

	failures := 0
	for _, spec := range specs {
		res := scenario.Run(spec)
		if res.Failed() || !quiet {
			fmt.Println(res.Report())
		}
		if !res.Failed() {
			continue
		}
		failures++
		failing := spec
		if minimize {
			fmt.Fprintf(os.Stderr, "aitf-scenario: minimizing seed %d...\n", spec.Seed)
			failing = scenario.Minimize(spec, func(s scenario.Spec) bool {
				return scenario.Run(s).Failed()
			})
			min := scenario.Run(failing)
			fmt.Println("minimized:")
			fmt.Println(min.Report())
		}
		if err := dumpSpec(failing, specPath(out, spec.Seed, len(specs))); err != nil {
			return err
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d scenarios violated invariants", failures, len(specs))
	}
	return nil
}

func collectSpecs(seed int64, n int, replay string) ([]scenario.Spec, error) {
	if replay != "" {
		raw, err := os.ReadFile(replay)
		if err != nil {
			return nil, err
		}
		var spec scenario.Spec
		if err := json.Unmarshal(raw, &spec); err != nil {
			return nil, fmt.Errorf("parse %s: %v", replay, err)
		}
		return []scenario.Spec{spec}, nil
	}
	if n < 1 {
		n = 1
	}
	specs := make([]scenario.Spec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, scenario.GenSpec(seed+int64(i)))
	}
	return specs, nil
}

// specPath derives the output path for one failing spec. In a sweep,
// the seed is spliced in before the extension so a later failure never
// overwrites an earlier reproducer.
func specPath(out string, seed int64, total int) string {
	if out == "" || total <= 1 {
		return out
	}
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s.seed%d%s", out[:len(out)-len(ext)], seed, ext)
}

func dumpSpec(spec scenario.Spec, path string) error {
	buf, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	if path == "" {
		fmt.Printf("spec: %s\n", buf)
		return nil
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "aitf-scenario: wrote failing spec to %s\n", path)
	return nil
}
