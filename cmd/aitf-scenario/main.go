// Command aitf-scenario runs seeded adversarial scenarios against the
// AITF implementation and checks the protocol invariants after each
// run (see internal/scenario). It is the CLI face of the property
// harness: run sweeps, replay a failing seed byte-identically, and
// minimize a failure to its smallest reproducing scenario.
//
// Usage:
//
//	aitf-scenario -seed 42               # run one scenario
//	aitf-scenario -seed 1 -n 100         # sweep seeds 1..100
//	aitf-scenario -seed 42 -minimize     # shrink a failing seed
//	aitf-scenario -replay failing.json   # re-run an exact spec
//	aitf-scenario -seed 42 -o spec.json  # dump the (failing) spec
//
// Exit status is 1 when any scenario violates an invariant. Every run
// is a pure function of its spec, so `-seed N` reproduces a failure
// exactly, and the JSON spec written with -o replays it on any
// machine.
//
// -metrics-json writes the sweep's aggregate counters (scenarios run,
// violations, attack/suppressed/victim bytes, detection accuracy) in
// the same JSON snapshot format the aitfd admin endpoint serves at
// /metrics.json, so CI and dashboards consume one schema for both live
// nodes and offline sweeps. "-" writes to stdout.
//
// The fault knobs (-ctrl-loss, -flaps, -crash, -retransmit) force a
// hostile network onto every scenario in the run, replacing whatever
// fault mix the seed drew:
//
//	aitf-scenario -seed 1 -n 50 -ctrl-loss 10 -retransmit
//	aitf-scenario -seed 7 -crash -flaps 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"aitf/internal/obs"
	"aitf/internal/scenario"
)

func main() {
	seed := flag.Int64("seed", 1, "base scenario seed")
	n := flag.Int("n", 1, "number of consecutive seeds to run")
	replay := flag.String("replay", "", "path to a JSON scenario spec to run instead of seeds")
	minimize := flag.Bool("minimize", false, "on failure, shrink the scenario while it still fails")
	out := flag.String("o", "", "write each failing spec as JSON here (sweeps splice the seed into the name)")
	metricsJSON := flag.String("metrics-json", "", "write aggregate sweep counters as a JSON metrics snapshot here (\"-\" for stdout)")
	quiet := flag.Bool("q", false, "only print failures")
	ctrlLoss := flag.Float64("ctrl-loss", 0, "force this percent control-plane loss on backbone links (0-20)")
	flaps := flag.Int("flaps", 0, "force this many victim-uplink down/up flaps mid-attack")
	crash := flag.Bool("crash", false, "force a victim-gateway crash/restore mid-attack")
	retransmit := flag.Bool("retransmit", false, "arm reliable control-plane retransmission on every gateway")
	flag.Parse()

	var faults *scenario.FaultSpec
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "ctrl-loss", "flaps", "crash", "retransmit":
			faults = &scenario.FaultSpec{
				CtrlLossPct: *ctrlLoss, Flaps: *flaps,
				CrashVictimGW: *crash, Retransmit: *retransmit,
			}
		}
	})

	if err := run(*seed, *n, *replay, *minimize, *out, *metricsJSON, *quiet, faults); err != nil {
		fmt.Fprintf(os.Stderr, "aitf-scenario: %v\n", err)
		os.Exit(1)
	}
}

func run(seed int64, n int, replay string, minimize bool, out, metricsJSON string, quiet bool, faults *scenario.FaultSpec) error {
	specs, err := collectSpecs(seed, n, replay)
	if err != nil {
		return err
	}
	if faults != nil {
		// Explicit fault knobs replace the seed-drawn fault mix on every
		// spec in the run; Run's own normalization clamps the values.
		for i := range specs {
			specs[i].Faults = *faults
		}
	}

	failures := 0
	var results []*scenario.Result
	for _, spec := range specs {
		res := scenario.Run(spec)
		results = append(results, res)
		if res.Failed() || !quiet {
			fmt.Println(res.Report())
		}
		if !res.Failed() {
			continue
		}
		failures++
		failing := spec
		if minimize {
			fmt.Fprintf(os.Stderr, "aitf-scenario: minimizing seed %d...\n", spec.Seed)
			failing = scenario.Minimize(spec, func(s scenario.Spec) bool {
				return scenario.Run(s).Failed()
			})
			min := scenario.Run(failing)
			fmt.Println("minimized:")
			fmt.Println(min.Report())
		}
		if err := dumpSpec(failing, specPath(out, spec.Seed, len(specs))); err != nil {
			return err
		}
	}
	if metricsJSON != "" {
		if err := writeMetrics(metricsJSON, results); err != nil {
			return err
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d scenarios violated invariants", failures, len(specs))
	}
	return nil
}

// writeMetrics aggregates the sweep into an obs registry and writes
// the same JSON snapshot shape aitfd serves at /metrics.json.
func writeMetrics(path string, results []*scenario.Result) error {
	reg := obs.NewRegistry()
	var (
		scenarios  = reg.Counter("aitf_scenario_runs_total", "Scenarios executed in this sweep.")
		failed     = reg.Counter("aitf_scenario_failed_total", "Scenarios with at least one invariant violation.")
		violations = reg.Counter("aitf_scenario_violations_total", "Individual invariant violations across the sweep.")
		events     = reg.Counter("aitf_scenario_events_total", "Simulator events processed.")
		attack     = reg.Counter("aitf_scenario_attack_bytes_total", "Attack bytes launched.")
		suppressed = reg.Counter("aitf_scenario_suppressed_sends_total", "Attacker sends withheld by stop-order compliance.")
		victim     = reg.Counter("aitf_scenario_victim_bytes_total", "Bytes that reached victims.")
		detections = reg.Counter("aitf_scenario_detections_total", "Attack-detected events.")
		falsePos   = reg.Counter("aitf_scenario_false_positives_total", "Detections naming a protected legitimate source.")
		missed     = reg.Counter("aitf_scenario_missed_attackers_total", "Steady attackers that crossed an AITF gateway undetected.")
		escalation = reg.Counter("aitf_scenario_escalations_total", "Filtering-request escalations.")
		disconnect = reg.Counter("aitf_scenario_disconnects_total", "Non-cooperating gateway disconnections.")
	)
	for _, r := range results {
		scenarios.Inc()
		if r.Failed() {
			failed.Inc()
		}
		violations.Add(uint64(len(r.Violations)))
		events.Add(uint64(r.Events))
		attack.Add(r.AttackSent)
		suppressed.Add(r.AttackSuppressed)
		victim.Add(r.VictimBytes)
		detections.Add(uint64(r.Detections))
		falsePos.Add(uint64(r.FalsePositives))
		missed.Add(uint64(r.MissedAttackers))
		escalation.Add(uint64(r.Escalations))
		disconnect.Add(uint64(r.Disconnects))
	}
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func collectSpecs(seed int64, n int, replay string) ([]scenario.Spec, error) {
	if replay != "" {
		raw, err := os.ReadFile(replay)
		if err != nil {
			return nil, err
		}
		var spec scenario.Spec
		if err := json.Unmarshal(raw, &spec); err != nil {
			return nil, fmt.Errorf("parse %s: %v", replay, err)
		}
		return []scenario.Spec{spec}, nil
	}
	if n < 1 {
		n = 1
	}
	specs := make([]scenario.Spec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, scenario.GenSpec(seed+int64(i)))
	}
	return specs, nil
}

// specPath derives the output path for one failing spec. In a sweep,
// the seed is spliced in before the extension so a later failure never
// overwrites an earlier reproducer.
func specPath(out string, seed int64, total int) string {
	if out == "" || total <= 1 {
		return out
	}
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s.seed%d%s", out[:len(out)-len(ext)], seed, ext)
}

func dumpSpec(spec scenario.Spec, path string) error {
	buf, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	if path == "" {
		fmt.Printf("spec: %s\n", buf)
		return nil
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "aitf-scenario: wrote failing spec to %s\n", path)
	return nil
}
