// Command aitf-sim runs named AITF attack scenarios on the
// deterministic simulator and prints the protocol timeline plus a
// summary of what each node did.
//
// Usage:
//
//	aitf-sim -scenario fig1 [-duration 10s] [-rate 1250000]
//	aitf-sim -scenario escalation -noncoop 2
//	aitf-sim -scenario worstcase
//	aitf-sim -scenario onoff -shadow victim-driven
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"aitf"
)

func main() {
	var (
		scenario = flag.String("scenario", "fig1", "fig1 | escalation | worstcase | onoff")
		duration = flag.Duration("duration", 10*time.Second, "virtual time to simulate")
		rate     = flag.Float64("rate", 1.25e6, "attack bandwidth in bytes/second")
		depth    = flag.Int("depth", 3, "border routers per side")
		nonCoop  = flag.Int("noncoop", 1, "non-cooperative attacker-side gateways (escalation scenario)")
		shadow   = flag.String("shadow", "victim-driven", "victim-driven | gateway-auto | shadow-off")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	opt := aitf.DefaultOptions()
	opt.Seed = *seed
	switch *shadow {
	case "victim-driven":
		opt.ShadowMode = aitf.VictimDriven
	case "gateway-auto":
		opt.ShadowMode = aitf.GatewayAuto
	case "shadow-off":
		opt.ShadowMode = aitf.ShadowOff
	default:
		log.Fatalf("aitf-sim: unknown shadow mode %q", *shadow)
	}

	chainOpt := aitf.ChainOptions{Options: opt, Depth: *depth}
	var pulse bool
	switch *scenario {
	case "fig1":
		chainOpt.AttackerCompliant = true
	case "escalation":
		chainOpt.NonCooperative = map[int]bool{}
		for i := 0; i < *nonCoop && i < *depth; i++ {
			chainOpt.NonCooperative[i] = true
		}
	case "worstcase":
		chainOpt.NonCooperative = map[int]bool{}
		for i := 0; i < *depth; i++ {
			chainOpt.NonCooperative[i] = true
		}
	case "onoff":
		chainOpt.NonCooperative = map[int]bool{0: true}
		pulse = true
	default:
		log.Fatalf("aitf-sim: unknown scenario %q", *scenario)
	}

	dep := aitf.DeployChain(chainOpt)
	fl := dep.Flood(dep.Attacker, dep.Victim, *rate)
	if pulse {
		fl.On = 300 * time.Millisecond
		fl.Off = time.Second
	}
	fl.Launch()
	dep.Run(*duration)

	fmt.Printf("scenario %s: depth %d, %v attack for %v (virtual)\n\n",
		*scenario, *depth, fmtBps(*rate), *duration)
	fmt.Println("== protocol timeline ==")
	fmt.Print(dep.Log)

	fmt.Println("\n== summary ==")
	horizon := dep.Now()
	eff := dep.Victim.Meter.BandwidthOver(horizon)
	fmt.Printf("victim received   %d bytes (effective bandwidth %s, reduction factor %.2e)\n",
		dep.Victim.Meter.Bytes, fmtBps(eff), eff/(*rate))
	fmt.Printf("escalation rounds %d\n", 1+dep.Log.Count(aitf.EvEscalated))
	fmt.Printf("disconnections    %d\n", dep.Log.Count(aitf.EvDisconnected))
	for i, g := range dep.VictimGWs {
		st := g.Stats()
		fmt.Printf("v_gw%d: reqs=%d policed=%d invalid=%d filters(peak)=%d drops=%d\n",
			i+1, st.ReqReceived, st.ReqPoliced, st.ReqInvalid,
			g.Filters().Stats().PeakOccupancy, st.FilterDrops)
	}
	for i, g := range dep.AttackGWs {
		st := g.Stats()
		fmt.Printf("a_gw%d: handshakes=%d/%d stop-orders=%d filters(peak)=%d drops=%d\n",
			i+1, st.HandshakesOK, st.HandshakesStarted, st.StopOrders,
			g.Filters().Stats().PeakOccupancy, st.FilterDrops)
	}
	if fl.Suppressed > 0 {
		fmt.Printf("attacker complied: %d sends suppressed\n", fl.Suppressed)
	}
	os.Exit(0)
}

func fmtBps(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2f MB/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2f KB/s", v/1e3)
	default:
		return fmt.Sprintf("%.0f B/s", v)
	}
}
