// Command aitf-vet runs the repo's custom static-analysis suite
// (internal/analysis): atomicfield, determinism, metricname and
// poolsafety, plus the -noalloc allocation gate. It is the
// compile-time enforcement of the invariants the protocol stack
// depends on — see the "Static analysis" section of the README.
//
// Standalone (the CI gate):
//
//	go run ./cmd/aitf-vet ./...
//	go run ./cmd/aitf-vet -noalloc ./...
//	go run ./cmd/aitf-vet -analyzers determinism,atomicfield ./internal/core/...
//
// As a go vet tool (slower — each compilation unit re-analyzes from
// source so annotation comments are visible):
//
//	go build -o /tmp/aitf-vet ./cmd/aitf-vet
//	go vet -vettool=/tmp/aitf-vet ./...
//
// Exit status: 0 clean, 1 diagnostics found, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"aitf/internal/analysis"
)

func main() {
	args := os.Args[1:]
	// go vet's tool protocol: version probe, flag discovery, then one
	// invocation per compilation unit with a JSON config file.
	if len(args) > 0 {
		switch {
		case args[0] == "-V=full" || args[0] == "-V":
			fmt.Println("aitf-vet version 1.0")
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(vetToolUnit(args[0]))
		}
	}
	os.Exit(standalone(args))
}

func standalone(args []string) int {
	fs := flag.NewFlagSet("aitf-vet", flag.ExitOnError)
	var (
		analyzers = fs.String("analyzers", "", "comma-separated analyzer subset (default: all of atomicfield,determinism,metricname,poolsafety)")
		noalloc   = fs.Bool("noalloc", false, "run the allocation gate instead: compile aitf:noalloc functions with -gcflags=-m and fail on heap escapes")
		listOnly  = fs.Bool("list", false, "list analyzers and exit")
	)
	fs.Parse(args)

	if *listOnly {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-12s %s\n", "noalloc", "(-noalloc) aitf:noalloc functions must compile with zero heap escapes")
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return opErr(err)
	}
	mod, err := analysis.LoadModule(cwd, patterns...)
	if err != nil {
		return opErr(err)
	}

	var diags []analysis.Diagnostic
	if *noalloc {
		diags, err = mod.NoallocCheck()
		if err != nil {
			return opErr(err)
		}
	} else {
		suite := analysis.All()
		if *analyzers != "" {
			suite = suite[:0]
			for _, name := range strings.Split(*analyzers, ",") {
				a := analysis.ByName(strings.TrimSpace(name))
				if a == nil {
					return opErr(fmt.Errorf("unknown analyzer %q", name))
				}
				suite = append(suite, a)
			}
		}
		diags, err = mod.Run(suite)
		if err != nil {
			return opErr(err)
		}
	}
	return report(diags)
}

func report(diags []analysis.Diagnostic) int {
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	fmt.Fprintf(os.Stderr, "aitf-vet: %d finding(s)\n", len(diags))
	return 1
}

func opErr(err error) int {
	fmt.Fprintln(os.Stderr, "aitf-vet:", err)
	return 2
}

// vetConfig is the subset of cmd/go's vet JSON config aitf-vet needs.
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
	SucceedOnTypecheckFailure bool
}

// vetToolUnit analyzes one go vet compilation unit. Facts are not
// exchanged through vetx files (annotations are re-read from source),
// so dependency units are satisfied with an empty marker and the
// cross-package metricname duplicate check only sees this unit's
// dependency closure; the standalone CI gate covers the whole module.
func vetToolUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return opErr(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return opErr(fmt.Errorf("parsing %s: %w", cfgPath, err))
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("aitf-vet\n"), 0o666); err != nil {
			return opErr(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Test variants ("pkg_test", "pkg [pkg.test]", "pkg.test") are not
	// go list-able module packages; the suite analyzes non-test sources
	// only, in vettool mode just like in standalone mode.
	if strings.HasSuffix(cfg.ImportPath, "_test") ||
		strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.Contains(cfg.ImportPath, " [") {
		return 0
	}
	dir := cfg.Dir
	if dir == "" && len(cfg.GoFiles) > 0 {
		dir = filepath.Dir(cfg.GoFiles[0])
	}
	mod, err := analysis.LoadModule(dir, cfg.ImportPath)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		return opErr(err)
	}
	diags, err := mod.Run(analysis.All(), cfg.ImportPath)
	if err != nil {
		return opErr(err)
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	return 1
}
