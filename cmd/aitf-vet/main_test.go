package main

import (
	"path/filepath"
	"testing"

	"aitf/internal/analysis"
)

// TestRepoClean is the acceptance gate run by CI: the whole module
// must pass every analyzer with zero findings. Any new diagnostic
// means either real broken code (fix it) or a missing annotation
// (justify it in-code with the grammar in internal/analysis).
func TestRepoClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := analysis.LoadModule(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := mod.Run(analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("aitf-vet: %d finding(s); the tree must stay clean", len(diags))
	}
}

// TestAnalyzerRegistry pins the suite roster: the CI gate runs all
// four analyzers, and ByName resolves each.
func TestAnalyzerRegistry(t *testing.T) {
	want := []string{"atomicfield", "determinism", "metricname", "poolsafety"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].Name, name)
		}
		if analysis.ByName(name) != all[i] {
			t.Errorf("ByName(%s) does not resolve to All()[%d]", name, i)
		}
	}
	if analysis.ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}
