package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aitf/internal/dataplane"
	"aitf/internal/experiments"
	"aitf/internal/obs"
)

// TestBenchJSONSchemaMatchesCheckedInFile: the committed
// BENCH_dataplane.json must decode strictly into the current output
// schema — if a field is renamed or removed, the trend file (and any
// tooling reading it) silently breaks; this test makes the drift loud.
func TestBenchJSONSchemaMatchesCheckedInFile(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_dataplane.json")
	if err != nil {
		t.Skipf("no checked-in trend file: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var out benchOutput
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("BENCH_dataplane.json no longer matches the -json schema: %v", err)
	}
	if out.GeneratedAt == "" || out.GoMaxProcs < 1 {
		t.Fatalf("header fields missing: %+v", out)
	}
	if len(out.Dataplane) == 0 {
		t.Fatal("trend file has no dataplane sweep cells")
	}
	goroutineCounts := map[int]bool{}
	for i, c := range out.Dataplane {
		if c.Shards < 1 || c.Filters < 1 || c.PPS <= 0 || c.Mix == "" || c.Goroutines < 1 {
			t.Fatalf("cell %d malformed: %+v", i, c)
		}
		if c.AllocsPerOp != 0 {
			t.Fatalf("cell %d: committed baseline has a non-zero steady-state allocs/op: %+v", i, c)
		}
		goroutineCounts[c.Goroutines] = true
	}
	if len(goroutineCounts) < 2 {
		t.Fatalf("trend file lacks a goroutine sweep: counts %v", goroutineCounts)
	}
	if len(out.Experiments) == 0 {
		t.Fatal("trend file has no experiment results")
	}
	// The wildcard/prefix sweep must be present, reach the million-entry
	// regime, keep the steady state allocation-free, and include the
	// linear-scan reference the speedup claims are made against.
	if len(out.DataplaneWildcard) == 0 {
		t.Fatal("trend file has no wildcard sweep cells")
	}
	maxNonExact, scanRefs := 0, 0
	for i, c := range out.DataplaneWildcard {
		if c.Shards < 1 || c.Pairs < 1 || c.NonExact < 1 || c.PPS <= 0 ||
			c.WildFrac <= 0 || c.WildFrac > 1 {
			t.Fatalf("wildcard cell %d malformed: %+v", i, c)
		}
		if c.AllocsPerOp != 0 {
			t.Fatalf("wildcard cell %d allocates at steady state: %+v", i, c)
		}
		if c.NonExact > maxNonExact {
			maxNonExact = c.NonExact
		}
		if c.ScanPPS > 0 {
			scanRefs++
			if c.NonExact >= 4096 && c.PPS < 10*c.ScanPPS {
				t.Fatalf("wildcard cell %d: indexed match only %.1fx the scan baseline (want >= 10x): %+v",
					i, c.PPS/c.ScanPPS, c)
			}
		}
	}
	if maxNonExact < 1<<20 {
		t.Fatalf("wildcard sweep stops at %d non-exact filters, want >= 1M", maxNonExact)
	}
	if scanRefs == 0 {
		t.Fatal("no wildcard cell carries a scan-baseline reference")
	}
	// The detection sweep must be present, span several sketch
	// geometries and attacker counts, and keep observation
	// allocation-free (detection runs inside the classification loop).
	if len(out.Detect) == 0 {
		t.Fatal("trend file has no detection sweep cells")
	}
	geoms, atts := map[[2]int]bool{}, map[int]bool{}
	for i, c := range out.Detect {
		if c.Width < 1 || c.Depth < 1 || c.TopK < 1 || c.Attackers < 1 || c.PPS <= 0 {
			t.Fatalf("detect cell %d malformed: %+v", i, c)
		}
		if c.AllocsPerOp != 0 {
			t.Fatalf("detect cell %d allocates at steady state: %+v", i, c)
		}
		geoms[[2]int{c.Width, c.Depth}] = true
		atts[c.Attackers] = true
	}
	if len(geoms) < 2 || len(atts) < 2 {
		t.Fatalf("detect sweep lacks geometry×attackers coverage: %v × %v", geoms, atts)
	}
	// The instrumentation-overhead sweep must be present, carry both
	// legs of every cell, and keep the instrumented steady state
	// allocation-free. The committed overhead ratio is advisory (the
	// hard <5% gate runs in-machine via -regress), but a committed
	// baseline showing instrumentation at half speed would mean the
	// zero-cost design failed — make that loud.
	if len(out.DataplaneInstrumented) == 0 {
		t.Fatal("trend file has no instrumented sweep cells")
	}
	for i, c := range out.DataplaneInstrumented {
		if c.Shards < 1 || c.Filters < 1 || c.Mix == "" || c.Goroutines < 1 ||
			c.PPS <= 0 || c.BasePPS <= 0 {
			t.Fatalf("instrumented cell %d malformed: %+v", i, c)
		}
		if c.AllocsPerOp != 0 {
			t.Fatalf("instrumented cell %d allocates at steady state: %+v", i, c)
		}
		if c.PPS < 0.5*c.BasePPS {
			t.Fatalf("instrumented cell %d runs at %.0f%% of uninstrumented: %+v",
				i, 100*c.PPS/c.BasePPS, c)
		}
	}
	// The collateral-allocation contrast must be present with both
	// policy cells, and the committed cells must still show the win the
	// allocator exists for: strictly more legit bytes delivered at
	// equal-or-better attack suppression, with lower covered-address
	// collateral.
	if len(out.Alloc) != 2 {
		t.Fatalf("trend file has %d alloc cells, want 2", len(out.Alloc))
	}
	apol := map[string]int{}
	for i, c := range out.Alloc {
		if c.Attackers < 1 || c.FilterCapacity < 1 || c.Aggregations == 0 ||
			c.AttackBytes == 0 || c.LegitBytes == 0 {
			t.Fatalf("alloc cell %d malformed: %+v", i, c)
		}
		apol[c.Policy] = i
	}
	fixedI, okF := apol["fixed24"]
	allocI, okA := apol["alloc"]
	if !okF || !okA {
		t.Fatalf("alloc section lacks a policy cell: %+v", out.Alloc)
	}
	fixed, alloced := out.Alloc[fixedI], out.Alloc[allocI]
	if alloced.LegitBytes <= fixed.LegitBytes || alloced.AttackBytes > fixed.AttackBytes ||
		alloced.CollateralAddrs >= fixed.CollateralAddrs {
		t.Fatalf("committed alloc cells lost the collateral win: fixed=%+v alloc=%+v",
			fixed, alloced)
	}
}

// TestMeasureDataplaneProducesCells: a tiny sweep cell measures a
// positive throughput and serializes with the exact key set the trend
// file uses.
func TestMeasureDataplaneProducesCells(t *testing.T) {
	e := dataplane.WorkloadEngine(1, 1024)
	pps := measureDataplane(e, 1024, 0.5, 1, 5*time.Millisecond)
	if pps <= 0 {
		t.Fatalf("measured %v pps", pps)
	}
	if allocs := classifyAllocsPerOp(e, 1024, 0.5); allocs != 0 {
		t.Fatalf("steady-state classify allocates %v/op, want 0", allocs)
	}
	cell := dataplaneResult{Shards: 1, Filters: 1024, Mix: "mixed", Goroutines: 1, PPS: pps}
	buf, err := json.Marshal(cell)
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]any
	if err := json.Unmarshal(buf, &keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"shards", "filters", "mix", "goroutines", "pps", "allocs_per_op"} {
		if _, ok := keys[k]; !ok {
			t.Fatalf("cell JSON lacks %q: %s", k, buf)
		}
	}
}

// TestWildcardRegressionFailures exercises the wildcard gate: uniform
// collapses fail, the machine-speed normalizer excuses a slow runner,
// and new steady-state allocations fail regardless of throughput.
func TestWildcardRegressionFailures(t *testing.T) {
	mk := func(nonExact int, pps, allocs float64) wildcardResult {
		return wildcardResult{Shards: 4, Pairs: 4096, NonExact: nonExact,
			WildFrac: 0.5, PPS: pps, AllocsPerOp: allocs}
	}
	baseline := []wildcardResult{mk(4096, 5e6, 0), mk(1<<20, 3e6, 0)}

	if fails, n := wildcardRegressionFailures(baseline,
		[]wildcardResult{mk(4096, 4.6e6, 0), mk(1<<20, 2.8e6, 0)}, 0.30, 1); len(fails) != 0 || n != 2 {
		t.Fatalf("small wobble failed (%d matched): %v", n, fails)
	}
	if fails, _ := wildcardRegressionFailures(baseline,
		[]wildcardResult{mk(4096, 2e6, 0), mk(1<<20, 1e6, 0)}, 0.30, 1); len(fails) != 1 {
		t.Fatalf("uniform collapse not caught: %v", fails)
	}
	// The same collapse passes when the main sweep says the whole
	// machine is 2.5x slower...
	if fails, _ := wildcardRegressionFailures(baseline,
		[]wildcardResult{mk(4096, 2e6, 0), mk(1<<20, 1.2e6, 0)}, 0.30, 0.4); len(fails) != 0 {
		t.Fatalf("normalizer not applied: %v", fails)
	}
	// ...but an allocation regression always fails.
	if fails, _ := wildcardRegressionFailures(baseline,
		[]wildcardResult{mk(4096, 5e6, 2), mk(1<<20, 3e6, 0)}, 0.30, 1); len(fails) != 1 {
		t.Fatalf("alloc regression not caught: %v", fails)
	}
	// A disjoint sweep fails loudly instead of passing vacuously.
	if fails, n := wildcardRegressionFailures(baseline,
		[]wildcardResult{mk(512, 1e6, 0)}, 0.30, 1); len(fails) != 1 || n != 0 {
		t.Fatalf("disjoint sweep not rejected: %v", fails)
	}
}

// TestWildcardSweepProducesCells runs one tiny wildcard cell end to end.
func TestWildcardSweepProducesCells(t *testing.T) {
	spec := wildcardSweepSpec{
		shards: 1, pairs: 256, nonExact: []int{256},
		wildFracs: []float64{0.5}, scanRefMax: 256,
	}
	cells := wildcardSweep(spec, 5*time.Millisecond)
	if len(cells) != 1 {
		t.Fatalf("got %d cells", len(cells))
	}
	c := cells[0]
	if c.PPS <= 0 || c.ScanPPS <= 0 {
		t.Fatalf("cell not measured: %+v", c)
	}
	if c.AllocsPerOp != 0 {
		t.Fatalf("steady-state wildcard classify allocates %v/op", c.AllocsPerOp)
	}
	buf, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]any
	if err := json.Unmarshal(buf, &keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"shards", "pairs", "non_exact", "wild_frac", "pps", "scan_pps", "allocs_per_op"} {
		if _, ok := keys[k]; !ok {
			t.Fatalf("wildcard cell JSON lacks %q: %s", k, buf)
		}
	}
}

func TestParseGoroutines(t *testing.T) {
	got, err := parseGoroutines("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseGoroutines = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "1,,2"} {
		if _, err := parseGoroutines(bad); err == nil {
			t.Fatalf("parseGoroutines(%q) accepted", bad)
		}
	}
}

// TestRegressionFailures exercises the gate logic on synthetic sweeps:
// uniform slowdowns beyond tolerance fail at the affected goroutine
// count, single-cell noise passes, and new steady-state allocations
// fail regardless of throughput.
func TestRegressionFailures(t *testing.T) {
	mk := func(g int, pps, allocs float64) dataplaneResult {
		return dataplaneResult{Shards: 4, Filters: 4096, Mix: "mixed", Goroutines: g, PPS: pps, AllocsPerOp: allocs}
	}
	baseline := []dataplaneResult{mk(1, 10e6, 0), mk(8, 30e6, 0)}

	if fails, n, _ := regressionFailures(baseline, []dataplaneResult{mk(1, 9e6, 0), mk(8, 28e6, 0)}, 0.30, false); len(fails) != 0 || n != 2 {
		t.Fatalf("small wobble failed (%d matched): %v", n, fails)
	}
	fails, _, _ := regressionFailures(baseline, []dataplaneResult{mk(1, 10e6, 0), mk(8, 12e6, 0)}, 0.30, false)
	if len(fails) != 1 {
		t.Fatalf("multi-goroutine collapse not caught: %v", fails)
	}
	fails, _, _ = regressionFailures(baseline, []dataplaneResult{mk(1, 5e6, 0), mk(8, 30e6, 0)}, 0.30, false)
	if len(fails) != 1 {
		t.Fatalf("single-goroutine collapse not caught: %v", fails)
	}
	fails, _, _ = regressionFailures(baseline, []dataplaneResult{mk(1, 10e6, 2), mk(8, 30e6, 0)}, 0.30, false)
	if len(fails) != 1 {
		t.Fatalf("alloc regression not caught: %v", fails)
	}

	// A sweep disjoint from the baseline must fail loudly, not pass
	// vacuously.
	disjoint := []dataplaneResult{{Shards: 2, Filters: 512, Mix: "hit", Goroutines: 3, PPS: 1e6}}
	if fails, n, _ := regressionFailures(baseline, disjoint, 0.30, false); len(fails) != 1 || n != 0 {
		t.Fatalf("disjoint sweep not rejected (%d matched): %v", n, fails)
	}

	// One alloc regression shared by several goroutine rows of the same
	// (shards,filters,mix) cell reports once, not per row.
	allocBase := []dataplaneResult{mk(1, 10e6, 0), mk(2, 20e6, 0), mk(8, 30e6, 0)}
	allocMeas := []dataplaneResult{mk(1, 10e6, 2), mk(2, 20e6, 2), mk(8, 30e6, 2)}
	if fails, _, _ := regressionFailures(allocBase, allocMeas, 0.30, false); len(fails) != 1 {
		t.Fatalf("alloc regression not deduped across goroutine rows: %v", fails)
	}

	// Normalized mode: a uniformly slower machine passes, but a
	// goroutine-count-relative collapse (the reintroduced-lock shape)
	// still fails, and so does an alloc regression.
	uniformSlow := []dataplaneResult{mk(1, 4e6, 0), mk(8, 12e6, 0)} // 2.5x slower runner
	if fails, _, norm := regressionFailures(baseline, uniformSlow, 0.30, true); len(fails) != 0 {
		t.Fatalf("uniformly slower machine failed normalized gate: %v", fails)
	} else if norm < 0.39 || norm > 0.41 {
		// The returned normalizer feeds the wildcard gate; 2.5x slower
		// machine => geomean ratio 0.4.
		t.Fatalf("norm = %v, want ~0.4", norm)
	}
	if _, _, norm := regressionFailures(baseline, uniformSlow, 0.30, false); norm != 1 {
		t.Fatalf("unnormalized gate must return norm 1, got %v", norm)
	}
	if fails, _, _ := regressionFailures(baseline, uniformSlow, 0.30, false); len(fails) == 0 {
		t.Fatal("absolute gate should fail on a 2.5x slower machine")
	}
	// A multi-core runner scaling well against a flat single-core
	// baseline must NOT fail at goroutines=1: normalization never
	// divides by a geomean above 1.
	multicore := []dataplaneResult{mk(1, 10e6, 0), mk(8, 100e6, 0)} // flat baseline, 3.3x scaling
	if fails, _, _ := regressionFailures(baseline, multicore, 0.30, true); len(fails) != 0 {
		t.Fatalf("healthy multi-core scaling failed normalized gate: %v", fails)
	}
	collapsed := []dataplaneResult{mk(1, 5e6, 0), mk(8, 3e6, 0)} // 8-gor collapsed to 0.2x while 1-gor is 0.5x
	if fails, _, _ := regressionFailures(baseline, collapsed, 0.30, true); len(fails) != 1 {
		t.Fatalf("normalized gate missed scaling collapse: %v", fails)
	}
	if fails, _, _ := regressionFailures(baseline, []dataplaneResult{mk(1, 10e6, 3), mk(8, 30e6, 0)}, 0.30, true); len(fails) != 1 {
		t.Fatalf("normalized gate missed alloc regression: %v", fails)
	}
	// Noise resistance: with several cells per goroutine count, one bad
	// cell must not fail the geomean gate.
	base := []dataplaneResult{}
	meas := []dataplaneResult{}
	for i, f := range []int{1024, 4096, 65536} {
		c := mk(1, 10e6, 0)
		c.Filters = f
		base = append(base, c)
		m := c
		if i == 0 {
			m.PPS = 6e6 // one noisy cell, 40% down
		}
		meas = append(meas, m)
	}
	if fails, _, _ := regressionFailures(base, meas, 0.30, false); len(fails) != 0 {
		t.Fatalf("one noisy cell failed the gate: %v", fails)
	}
}

// TestDetectSweepProducesCells runs one tiny detection cell end to end.
func TestDetectSweepProducesCells(t *testing.T) {
	spec := detectSweepSpec{
		geoms:     []struct{ width, depth int }{{256, 2}},
		topk:      32,
		attackers: []int{8},
	}
	cells := detectSweep(spec, 5*time.Millisecond)
	if len(cells) != 1 {
		t.Fatalf("got %d cells", len(cells))
	}
	c := cells[0]
	if c.PPS <= 0 {
		t.Fatalf("cell not measured: %+v", c)
	}
	if c.AllocsPerOp != 0 {
		t.Fatalf("steady-state Observe allocates %v/op", c.AllocsPerOp)
	}
	buf, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]any
	if err := json.Unmarshal(buf, &keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"width", "depth", "topk", "attackers", "pps", "allocs_per_op"} {
		if _, ok := keys[k]; !ok {
			t.Fatalf("detect cell JSON lacks %q: %s", k, buf)
		}
	}
}

// TestDetectRegressionFailures exercises the detection gate: uniform
// collapses fail, the machine-speed normalizer excuses a slow runner,
// allocation regressions always fail, and a disjoint sweep fails
// loudly instead of passing vacuously.
func TestDetectRegressionFailures(t *testing.T) {
	mk := func(width, att int, pps, allocs float64) detectResult {
		return detectResult{Width: width, Depth: 4, TopK: 128, Attackers: att, PPS: pps, AllocsPerOp: allocs}
	}
	baseline := []detectResult{mk(1024, 4, 20e6, 0), mk(4096, 64, 15e6, 0)}

	if fails, n := detectRegressionFailures(baseline,
		[]detectResult{mk(1024, 4, 18e6, 0), mk(4096, 64, 14e6, 0)}, 0.30, 1); len(fails) != 0 || n != 2 {
		t.Fatalf("small wobble failed (%d matched): %v", n, fails)
	}
	if fails, _ := detectRegressionFailures(baseline,
		[]detectResult{mk(1024, 4, 8e6, 0), mk(4096, 64, 6e6, 0)}, 0.30, 1); len(fails) != 1 {
		t.Fatalf("uniform collapse not caught: %v", fails)
	}
	// A uniformly slower machine passes via the carried normalizer...
	if fails, _ := detectRegressionFailures(baseline,
		[]detectResult{mk(1024, 4, 8e6, 0), mk(4096, 64, 6e6, 0)}, 0.30, 0.4); len(fails) != 0 {
		t.Fatalf("normalizer not applied: %v", fails)
	}
	// ...but allocations always fail.
	if fails, _ := detectRegressionFailures(baseline,
		[]detectResult{mk(1024, 4, 20e6, 3), mk(4096, 64, 15e6, 0)}, 0.30, 1); len(fails) != 1 {
		t.Fatalf("alloc regression not caught: %v", fails)
	}
	if fails, n := detectRegressionFailures(baseline,
		[]detectResult{mk(512, 2, 1e6, 0)}, 0.30, 1); len(fails) != 1 || n != 0 {
		t.Fatalf("disjoint sweep not rejected: %v", fails)
	}
}

// TestInstrumentedSweepProducesCells: the overhead sweep measures both
// legs of each cell, keeps the instrumented steady state at 0
// allocs/op, and leaves a live registry behind for -metrics-json.
func TestInstrumentedSweepProducesCells(t *testing.T) {
	spec := sweepSpec{shards: []int{1}, filters: []int{1024},
		mixes: []string{"mixed"}, goroutines: []int{1}}
	cells, reg := instrumentedSweep(spec, 5*time.Millisecond)
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.PPS <= 0 || c.BasePPS <= 0 {
		t.Fatalf("cell missing a leg: %+v", c)
	}
	if c.AllocsPerOp != 0 {
		t.Fatalf("instrumented steady state allocates %v/op, want 0", c.AllocsPerOp)
	}
	if reg == nil {
		t.Fatal("no registry returned")
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	if err := obs.CheckExposition(expo); err != nil {
		t.Fatalf("registry exposition invalid: %v", err)
	}
	for _, want := range []string{"aitf_dataplane_classified_total", "aitf_dataplane_batch_size_count"} {
		if !strings.Contains(expo, want) {
			t.Fatalf("registry lacks %s after the sweep:\n%s", want, expo)
		}
	}
}

// TestInstrumentedOverheadFailures exercises the in-run gate: within
// tolerance passes, a collapse fails, and instrumented allocations
// fail regardless of throughput.
func TestInstrumentedOverheadFailures(t *testing.T) {
	mk := func(pps, base, allocs float64) instrumentedResult {
		return instrumentedResult{Shards: 4, Filters: 4096, Mix: "mixed",
			Goroutines: 1, PPS: pps, BasePPS: base, AllocsPerOp: allocs}
	}
	if fails := instrumentedOverheadFailures(
		[]instrumentedResult{mk(0.97e6, 1e6, 0), mk(0.99e6, 1e6, 0)}, 0.05); len(fails) != 0 {
		t.Fatalf("2%% overhead failed the 5%% gate: %v", fails)
	}
	if fails := instrumentedOverheadFailures(
		[]instrumentedResult{mk(0.80e6, 1e6, 0)}, 0.05); len(fails) != 1 {
		t.Fatalf("20%% overhead passed the 5%% gate: %v", fails)
	}
	if fails := instrumentedOverheadFailures(
		[]instrumentedResult{mk(1e6, 1e6, 2)}, 0.05); len(fails) != 1 {
		t.Fatalf("instrumented allocations passed: %v", fails)
	}
	if fails := instrumentedOverheadFailures(nil, 0.05); len(fails) != 1 {
		t.Fatalf("empty sweep passed: %v", fails)
	}
}

// TestWriteMetricsJSON: the snapshot file is the /metrics.json shape.
func TestWriteMetricsJSON(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("aitf_test_total", "test").Add(7)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := writeMetricsJSON(path, reg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []map[string]any
	if err := json.Unmarshal(raw, &snaps); err != nil {
		t.Fatalf("snapshot not JSON: %v\n%s", err, raw)
	}
	if len(snaps) != 1 || snaps[0]["name"] != "aitf_test_total" || snaps[0]["value"] != 7.0 {
		t.Fatalf("snapshot wrong: %s", raw)
	}
	if err := writeMetricsJSON(path, nil); err == nil {
		t.Fatal("nil registry accepted")
	}
}

// TestAllocRegressionFailures exercises the collateral-allocation gate:
// identical deterministic cells pass, any byte drift from the baseline
// fails, and losing the allocator's collateral win fails even when the
// baseline agrees.
func TestAllocRegressionFailures(t *testing.T) {
	fixed := experiments.AllocCell{Policy: "fixed24", Attackers: 12, FilterCapacity: 4,
		AttackBytes: 100, LegitBytes: 50, Aggregations: 2, CollateralAddrs: 500, CollateralBytes: 40}
	alloced := experiments.AllocCell{Policy: "alloc", Attackers: 12, FilterCapacity: 4,
		AttackBytes: 100, LegitBytes: 80, Aggregations: 2, CollateralAddrs: 20, CollateralBytes: 10}
	base := []experiments.AllocCell{fixed, alloced}

	if fails, matched := allocRegressionFailures(base, base); len(fails) != 0 || matched != 2 {
		t.Fatalf("identical cells failed: %v (matched %d)", fails, matched)
	}
	// The simulator is deterministic: any drift from the committed
	// baseline is a behavior change and must fail.
	drift := []experiments.AllocCell{fixed, alloced}
	drift[1].LegitBytes++
	if fails, _ := allocRegressionFailures(base, drift); len(fails) == 0 {
		t.Fatal("baseline drift passed")
	}
	// Losing the collateral win fails even with a matching baseline.
	tied := alloced
	tied.LegitBytes = fixed.LegitBytes
	tiedSet := []experiments.AllocCell{fixed, tied}
	if fails, _ := allocRegressionFailures(tiedSet, tiedSet); len(fails) == 0 {
		t.Fatal("lost collateral win passed")
	}
	// So does regressed attack suppression or covered-addr collateral.
	worse := alloced
	worse.AttackBytes = fixed.AttackBytes + 1
	worseSet := []experiments.AllocCell{fixed, worse}
	if fails, _ := allocRegressionFailures(worseSet, worseSet); len(fails) == 0 {
		t.Fatal("attack-suppression regression passed")
	}
	cover := alloced
	cover.CollateralAddrs = fixed.CollateralAddrs
	coverSet := []experiments.AllocCell{fixed, cover}
	if fails, _ := allocRegressionFailures(coverSet, coverSet); len(fails) == 0 {
		t.Fatal("covered-addr regression passed")
	}
	// A sweep missing a policy cell fails loudly.
	if fails, matched := allocRegressionFailures(base, base[:1]); len(fails) == 0 || matched != 0 {
		t.Fatalf("missing cell: fails=%v matched=%d", fails, matched)
	}
	// So does a baseline that matches nothing (stale trend file).
	if fails, matched := allocRegressionFailures(nil, base); len(fails) == 0 || matched != 0 {
		t.Fatalf("empty baseline: fails=%v matched=%d", fails, matched)
	}
}
