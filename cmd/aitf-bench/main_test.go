package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"
)

// TestBenchJSONSchemaMatchesCheckedInFile: the committed
// BENCH_dataplane.json must decode strictly into the current output
// schema — if a field is renamed or removed, the trend file (and any
// tooling reading it) silently breaks; this test makes the drift loud.
func TestBenchJSONSchemaMatchesCheckedInFile(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_dataplane.json")
	if err != nil {
		t.Skipf("no checked-in trend file: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var out benchOutput
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("BENCH_dataplane.json no longer matches the -json schema: %v", err)
	}
	if out.GeneratedAt == "" || out.GoMaxProcs < 1 {
		t.Fatalf("header fields missing: %+v", out)
	}
	if len(out.Dataplane) == 0 {
		t.Fatal("trend file has no dataplane sweep cells")
	}
	for i, c := range out.Dataplane {
		if c.Shards < 1 || c.Filters < 1 || c.PPS <= 0 || c.Mix == "" {
			t.Fatalf("cell %d malformed: %+v", i, c)
		}
	}
	if len(out.Experiments) == 0 {
		t.Fatal("trend file has no experiment results")
	}
}

// TestMeasureDataplaneProducesCells: a tiny sweep cell measures a
// positive throughput and serializes with the exact key set the trend
// file uses.
func TestMeasureDataplaneProducesCells(t *testing.T) {
	pps := measureDataplane(1, 1024, 0.5, 5*time.Millisecond)
	if pps <= 0 {
		t.Fatalf("measured %v pps", pps)
	}
	cell := dataplaneResult{Shards: 1, Filters: 1024, Mix: "mixed", Goroutines: 1, PPS: pps}
	buf, err := json.Marshal(cell)
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]any
	if err := json.Unmarshal(buf, &keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"shards", "filters", "mix", "goroutines", "pps"} {
		if _, ok := keys[k]; !ok {
			t.Fatalf("cell JSON lacks %q: %s", k, buf)
		}
	}
}
