// Command aitf-bench regenerates every experiment table of the paper's
// evaluation (see EXPERIMENTS.md). With no arguments it runs
// everything; pass experiment IDs (e.g. "E2 E8") to select.
//
// With -json, results — including a data-plane throughput sweep across
// shard counts — are also written as machine-readable JSON (default
// BENCH_dataplane.json) so successive revisions can track the
// performance trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aitf/internal/dataplane"
	"aitf/internal/experiments"
)

// dataplaneResult is one cell of the throughput sweep.
type dataplaneResult struct {
	Shards     int     `json:"shards"`
	Filters    int     `json:"filters"`
	Mix        string  `json:"mix"`
	Goroutines int     `json:"goroutines"`
	PPS        float64 `json:"pps"`
}

// benchOutput is the schema of the -json file.
type benchOutput struct {
	GeneratedAt string               `json:"generated_at"`
	GoMaxProcs  int                  `json:"gomaxprocs"`
	Experiments []experiments.Result `json:"experiments"`
	Dataplane   []dataplaneResult    `json:"dataplane"`
}

// measureDataplane runs concurrent batch classification against a
// preloaded engine for the given duration and returns packets/sec. The
// engine and batches come from the same dataplane.Workload* helpers the
// BenchmarkDataplaneThroughput family uses, so the JSON trend tracks
// exactly the benchmarked cells.
func measureDataplane(shards, filters int, hitFrac float64, dur time.Duration) float64 {
	e := dataplane.WorkloadEngine(shards, filters)
	const batchSize = 64
	workers := runtime.GOMAXPROCS(0)
	var total atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			batch := dataplane.WorkloadBatch(rng, filters, batchSize, hitFrac)
			var verdicts []dataplane.Verdict
			for {
				select {
				case <-stop:
					return
				default:
				}
				verdicts = e.ClassifyInto(batch, verdicts)
				total.Add(batchSize)
			}
		}(int64(w) + 1)
	}
	start := time.Now()
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	return float64(total.Load()) / time.Since(start).Seconds()
}

func dataplaneSweep(dur time.Duration) []dataplaneResult {
	mixes := []struct {
		name string
		frac float64
	}{{"hit", 1}, {"miss", 0}, {"mixed", 0.5}}
	var out []dataplaneResult
	for _, shards := range []int{1, 4, 8} {
		for _, filters := range []int{1024, 4096, 65536} {
			for _, mix := range mixes {
				out = append(out, dataplaneResult{
					Shards:     shards,
					Filters:    filters,
					Mix:        mix.name,
					Goroutines: runtime.GOMAXPROCS(0),
					PPS:        measureDataplane(shards, filters, mix.frac, dur),
				})
			}
		}
	}
	return out
}

func main() {
	jsonOut := flag.Bool("json", false, "also write machine-readable results to -o")
	outPath := flag.String("o", "BENCH_dataplane.json", "output path for -json")
	sweepDur := flag.Duration("sweep", 100*time.Millisecond, "measurement window per data-plane sweep cell")
	flag.Parse()

	drivers, ids := experiments.All()
	want := flag.Args()
	if len(want) == 0 {
		want = ids
	}
	var results []experiments.Result
	for _, id := range want {
		d, ok := drivers[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "aitf-bench: unknown experiment %q (have %v)\n", id, ids)
			os.Exit(2)
		}
		res := d()
		res.Render(os.Stdout)
		results = append(results, res)
	}

	if !*jsonOut {
		return
	}
	fmt.Fprintf(os.Stderr, "aitf-bench: running data-plane throughput sweep (%v per cell)...\n", *sweepDur)
	out := benchOutput{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Experiments: results,
		Dataplane:   dataplaneSweep(*sweepDur),
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "aitf-bench: marshal: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "aitf-bench: write %s: %v\n", *outPath, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "aitf-bench: wrote %s\n", *outPath)
}
