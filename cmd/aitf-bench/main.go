// Command aitf-bench regenerates every experiment table of the paper's
// evaluation (see DESIGN.md §4 and EXPERIMENTS.md). With no arguments
// it runs everything; pass experiment IDs (e.g. "E2 E8") to select.
package main

import (
	"fmt"
	"os"

	"aitf/internal/experiments"
)

func main() {
	drivers, ids := experiments.All()
	want := os.Args[1:]
	if len(want) == 0 {
		want = ids
	}
	for _, id := range want {
		d, ok := drivers[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "aitf-bench: unknown experiment %q (have %v)\n", id, ids)
			os.Exit(2)
		}
		res := d()
		res.Render(os.Stdout)
	}
}
