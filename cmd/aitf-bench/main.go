// Command aitf-bench regenerates every experiment table of the paper's
// evaluation (see EXPERIMENTS.md). With no arguments it runs
// everything; pass experiment IDs (e.g. "E2 E8") to select.
//
// With -json, results — including a data-plane throughput sweep across
// shard counts, table sizes, traffic mixes, and goroutine counts, plus
// a steady-state allocs/op probe per cell — are also written as
// machine-readable JSON (default BENCH_dataplane.json) so successive
// revisions can track the performance trajectory.
//
// With -regress, the sweep is re-run and compared against the
// committed trend file instead: the command exits non-zero when the
// geometric-mean throughput at any goroutine count drops more than
// -regress-tol below the baseline, when a steady-state cell starts
// allocating, or when live metrics instrumentation costs more than
// -instr-tol (default 5%) of uninstrumented throughput — that last
// gate compares twin engines inside the same run, so it holds on any
// machine. CI runs this as a cheap perf smoke.
//
// -metrics-json additionally writes the instrumented engine's live
// counter registry in the aitfd /metrics.json snapshot format.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aitf/internal/dataplane"
	"aitf/internal/detect"
	"aitf/internal/experiments"
	"aitf/internal/obs"
	"aitf/internal/sim"
)

// dataplaneResult is one cell of the throughput sweep.
type dataplaneResult struct {
	Shards     int     `json:"shards"`
	Filters    int     `json:"filters"`
	Mix        string  `json:"mix"`
	Goroutines int     `json:"goroutines"`
	PPS        float64 `json:"pps"`
	// AllocsPerOp is the steady-state heap allocations per ClassifyInto
	// call (one 64-packet batch); the lock-free read path keeps it 0.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// wildcardResult is one cell of the wildcard/prefix sweep: a table of
// Pairs exact-pair filters plus NonExact coarse filters (source-/24
// prefixes in the LPM trie, dst-anchored wildcards in the secondary
// index), classified with WildFrac of the traffic aimed at the coarse
// population. ScanPPS, measured once per table size, is the pre-change
// linear-scan reference for the same workload — the speedup the
// indexed match hierarchy buys is PPS/ScanPPS.
type wildcardResult struct {
	Shards      int     `json:"shards"`
	Pairs       int     `json:"pairs"`
	NonExact    int     `json:"non_exact"`
	WildFrac    float64 `json:"wild_frac"`
	PPS         float64 `json:"pps"`
	ScanPPS     float64 `json:"scan_pps"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// instrumentedResult is one cell of the instrumentation-overhead
// sweep: the same workload classified by an engine with the full obs
// registry attached (counters live, batch-size histogram recording)
// and by an uninstrumented twin. BasePPS is the uninstrumented
// reference measured in the same run, so the overhead ratio
// PPS/BasePPS is machine-independent and can be gated absolutely.
type instrumentedResult struct {
	Shards     int     `json:"shards"`
	Filters    int     `json:"filters"`
	Mix        string  `json:"mix"`
	Goroutines int     `json:"goroutines"`
	PPS        float64 `json:"pps"`
	BasePPS    float64 `json:"base_pps"`
	// AllocsPerOp is the instrumented engine's steady-state heap
	// allocations per ClassifyInto call; instrumentation must keep it 0.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// detectResult is one cell of the detection sweep: the sketch engine's
// batch Observe throughput over a mixed attacker/background workload,
// across count-min geometries and attacker counts, plus the
// steady-state allocs/op probe (the observation path must stay 0 so
// detection can run inside the classification loop).
type detectResult struct {
	Width       int     `json:"width"`
	Depth       int     `json:"depth"`
	TopK        int     `json:"topk"`
	Attackers   int     `json:"attackers"`
	PPS         float64 `json:"pps"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchOutput is the schema of the -json file.
type benchOutput struct {
	GeneratedAt string               `json:"generated_at"`
	GoMaxProcs  int                  `json:"gomaxprocs"`
	Experiments []experiments.Result `json:"experiments"`
	Dataplane   []dataplaneResult    `json:"dataplane"`
	// DataplaneWildcard tracks the indexed wildcard/prefix match path
	// across table sizes up to one million entries.
	DataplaneWildcard []wildcardResult `json:"dataplane_wildcard"`
	// DataplaneInstrumented tracks the cost of live metrics on the hot
	// path: instrumented vs uninstrumented twin engines, same workload,
	// same run.
	DataplaneInstrumented []instrumentedResult `json:"dataplane_instrumented"`
	// Detect tracks the sketch detection engine (internal/detect).
	Detect []detectResult `json:"detect"`
	// Alloc contrasts the fixed-/24 aggregation fallback with the
	// collateral-aware allocator on the deterministic §IV-B pressure
	// workload (internal/experiments.AllocSweep). The simulator runs in
	// virtual time, so the cells are byte-exact on every machine.
	Alloc []experiments.AllocCell `json:"alloc"`
}

const benchBatchSize = 64

// mixFrac maps a mix name to its hit fraction.
var mixFrac = map[string]float64{"hit": 1, "miss": 0, "mixed": 0.5}

// measureDataplane runs concurrent batch classification against a
// preloaded engine with exactly `goroutines` workers for the given
// duration and returns aggregate packets/sec. The engine and batches
// come from the same dataplane.Workload* helpers the
// BenchmarkDataplaneThroughput family uses, so the JSON trend tracks
// exactly the benchmarked cells.
func measureDataplane(e *dataplane.Engine, filters int, hitFrac float64, goroutines int, dur time.Duration) float64 {
	var total atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			batch := dataplane.WorkloadBatch(rng, filters, benchBatchSize, hitFrac)
			verdicts := make([]dataplane.Verdict, 0, benchBatchSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				verdicts = e.ClassifyInto(batch, verdicts)
				total.Add(benchBatchSize)
			}
		}(int64(w) + 1)
	}
	start := time.Now()
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	return float64(total.Load()) / time.Since(start).Seconds()
}

// classifyAllocsPerOp measures steady-state heap allocations per
// ClassifyInto call on a warm engine, single-goroutine so the malloc
// delta is attributable. GC is paused for the measurement: a cycle
// mid-loop would evict the engine's sync.Pool scratch and charge the
// refill to the classify path as phantom fractional allocs.
func classifyAllocsPerOp(e *dataplane.Engine, filters int, hitFrac float64) float64 {
	rng := rand.New(rand.NewSource(99))
	batch := dataplane.WorkloadBatch(rng, filters, benchBatchSize, hitFrac)
	verdicts := make([]dataplane.Verdict, 0, benchBatchSize)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	verdicts = e.ClassifyInto(batch, verdicts) // warm the scratch pool post-GC
	const runs = 1000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		verdicts = e.ClassifyInto(batch, verdicts)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}

// sweepSpec enumerates the cells measured by -json and -regress.
type sweepSpec struct {
	shards, filters []int
	mixes           []string
	goroutines      []int
}

func defaultSweep(goroutines []int) sweepSpec {
	return sweepSpec{
		shards:     []int{1, 4, 8},
		filters:    []int{1024, 4096, 65536},
		mixes:      []string{"hit", "miss", "mixed"},
		goroutines: goroutines,
	}
}

func dataplaneSweep(spec sweepSpec, dur time.Duration) []dataplaneResult {
	var out []dataplaneResult
	for _, shards := range spec.shards {
		for _, filters := range spec.filters {
			// One engine per (shards, filters): cells differ only in
			// offered traffic, exactly as the benchmark family's cells do.
			e := dataplane.WorkloadEngine(shards, filters)
			for _, mix := range spec.mixes {
				allocs := classifyAllocsPerOp(e, filters, mixFrac[mix])
				for _, g := range spec.goroutines {
					out = append(out, dataplaneResult{
						Shards:      shards,
						Filters:     filters,
						Mix:         mix,
						Goroutines:  g,
						PPS:         measureDataplane(e, filters, mixFrac[mix], g, dur),
						AllocsPerOp: allocs,
					})
				}
			}
		}
	}
	return out
}

// defaultInstrumentedSweep picks the overhead cells: mid-size tables,
// the mixed traffic pattern, serial and parallel offered load. Small on
// purpose — each cell is measured twice (instrumented and base).
func defaultInstrumentedSweep(goroutines []int) sweepSpec {
	gors := []int{1}
	for _, g := range goroutines {
		if g > 1 {
			gors = append(gors, g)
			break // 1 plus the first parallel count is enough signal
		}
	}
	return sweepSpec{
		shards:     []int{4},
		filters:    []int{4096, 65536},
		mixes:      []string{"mixed"},
		goroutines: gors,
	}
}

// instrumentedSweep measures every cell twice over the same workload:
// once on an engine carrying the full obs registry (live counters plus
// the batch-size histogram) and once on an uninstrumented twin built
// from the same helper. The returned registry is the last cell's, with
// its counters still live — the -metrics-json snapshot.
func instrumentedSweep(spec sweepSpec, dur time.Duration) ([]instrumentedResult, *obs.Registry) {
	var out []instrumentedResult
	var reg *obs.Registry
	for _, shards := range spec.shards {
		for _, filters := range spec.filters {
			base := dataplane.WorkloadEngine(shards, filters)
			inst := dataplane.WorkloadEngine(shards, filters)
			reg = obs.NewRegistry()
			inst.Instrument(reg)
			for _, mix := range spec.mixes {
				allocs := classifyAllocsPerOp(inst, filters, mixFrac[mix])
				for _, g := range spec.goroutines {
					out = append(out, instrumentedResult{
						Shards:      shards,
						Filters:     filters,
						Mix:         mix,
						Goroutines:  g,
						PPS:         measureDataplane(inst, filters, mixFrac[mix], g, dur),
						BasePPS:     measureDataplane(base, filters, mixFrac[mix], g, dur),
						AllocsPerOp: allocs,
					})
				}
			}
		}
	}
	return out, reg
}

// instrumentedOverheadFailures gates the cost of instrumentation. Both
// legs of every cell come from the same run on the same machine, so
// unlike the baseline-file gates this one is absolute: the geometric
// mean of PPS/BasePPS across cells must stay above 1-maxOverhead
// (default 5%), and the instrumented steady state must not allocate.
func instrumentedOverheadFailures(measured []instrumentedResult, maxOverhead float64) []string {
	var fails []string
	var logSum float64
	n := 0
	for _, m := range measured {
		if m.BasePPS <= 0 {
			continue
		}
		n++
		logSum += math.Log(m.PPS / m.BasePPS)
		if m.AllocsPerOp >= 1 {
			fails = append(fails, fmt.Sprintf(
				"instrumented allocs: shards=%d filters=%d mix=%s: %.2f allocs/op (want 0)",
				m.Shards, m.Filters, m.Mix, m.AllocsPerOp))
		}
	}
	if n == 0 {
		return []string{"instrumented sweep produced no comparable cells"}
	}
	ratio := math.Exp(logSum / float64(n))
	if ratio < 1-maxOverhead {
		fails = append(fails, fmt.Sprintf(
			"instrumentation overhead: geomean %.1f%% of uninstrumented (floor %.0f%%)",
			ratio*100, (1-maxOverhead)*100))
	}
	return fails
}

// wildcardSweepSpec enumerates the wildcard/prefix cells: non-exact
// table sizes from 4k to 1M at two coarse-traffic fractions.
type wildcardSweepSpec struct {
	shards, pairs int
	nonExact      []int
	wildFracs     []float64
	// scanRefMax bounds the table size at which the linear-scan
	// reference is measured (it is O(nonExact) per packet and becomes
	// unmeasurable long before 1M).
	scanRefMax int
}

func defaultWildcardSweep() wildcardSweepSpec {
	return wildcardSweepSpec{
		shards:     4,
		pairs:      4096,
		nonExact:   []int{4096, 65536, 262144, 1 << 20},
		wildFracs:  []float64{0.5, 0.9},
		scanRefMax: 65536,
	}
}

// measureWildcard mirrors measureDataplane over the wildcard workload.
func measureWildcard(e *dataplane.Engine, pairs, nonExact int, wildFrac float64, goroutines int, dur time.Duration) float64 {
	var total atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			batch := dataplane.WildcardWorkloadBatch(rng, pairs, nonExact, benchBatchSize, wildFrac)
			verdicts := make([]dataplane.Verdict, 0, benchBatchSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				verdicts = e.ClassifyInto(batch, verdicts)
				total.Add(benchBatchSize)
			}
		}(int64(w) + 1)
	}
	start := time.Now()
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	return float64(total.Load()) / time.Since(start).Seconds()
}

// wildcardAllocsPerOp mirrors classifyAllocsPerOp over the wildcard
// workload.
func wildcardAllocsPerOp(e *dataplane.Engine, pairs, nonExact int, wildFrac float64) float64 {
	rng := rand.New(rand.NewSource(99))
	batch := dataplane.WildcardWorkloadBatch(rng, pairs, nonExact, benchBatchSize, wildFrac)
	verdicts := make([]dataplane.Verdict, 0, benchBatchSize)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	verdicts = e.ClassifyInto(batch, verdicts)
	const runs = 1000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		verdicts = e.ClassifyInto(batch, verdicts)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}

// measureScanRef measures the pre-change alternative: matching each
// packet by linearly scanning every non-exact label, exactly as the
// old per-view scan list did. Returns packets/sec.
func measureScanRef(pairs, nonExact int, wildFrac float64, dur time.Duration) float64 {
	labels := dataplane.WildcardWorkloadLabels(nonExact)
	rng := rand.New(rand.NewSource(21))
	batch := dataplane.WildcardWorkloadBatch(rng, pairs, nonExact, benchBatchSize, wildFrac)
	deadline := time.Now().Add(dur)
	var packets uint64
	start := time.Now()
	for time.Now().Before(deadline) {
		for _, p := range batch {
			tup := p.Tuple()
			for j := range labels {
				if labels[j].Matches(tup) {
					break
				}
			}
		}
		packets += benchBatchSize
	}
	return float64(packets) / time.Since(start).Seconds()
}

func wildcardSweep(spec wildcardSweepSpec, dur time.Duration) []wildcardResult {
	var out []wildcardResult
	for _, nonExact := range spec.nonExact {
		e := dataplane.WildcardWorkloadEngine(spec.shards, spec.pairs, nonExact)
		scan := 0.0
		if nonExact <= spec.scanRefMax {
			scan = measureScanRef(spec.pairs, nonExact, 0.5, dur)
		}
		for _, frac := range spec.wildFracs {
			out = append(out, wildcardResult{
				Shards:      spec.shards,
				Pairs:       spec.pairs,
				NonExact:    nonExact,
				WildFrac:    frac,
				PPS:         measureWildcard(e, spec.pairs, nonExact, frac, 1, dur),
				ScanPPS:     scan,
				AllocsPerOp: wildcardAllocsPerOp(e, spec.pairs, nonExact, frac),
			})
		}
	}
	return out
}

// detectSweepSpec enumerates the detection cells: count-min geometry ×
// attacker count, matching internal/detect's BenchmarkObserve family.
type detectSweepSpec struct {
	geoms     []struct{ width, depth int }
	topk      int
	attackers []int
}

func defaultDetectSweep() detectSweepSpec {
	return detectSweepSpec{
		geoms:     []struct{ width, depth int }{{1024, 2}, {1024, 4}, {4096, 4}},
		topk:      128,
		attackers: []int{4, 64, 1024},
	}
}

// measureDetect runs single-goroutine batch observation against a warm
// engine for the given duration and returns packets/sec. Virtual time
// advances 500µs per batch so window rotations are exercised at their
// steady-state cadence.
func measureDetect(e *detect.Engine, attackers int, dur time.Duration) float64 {
	rng := rand.New(rand.NewSource(1))
	batch := detect.WorkloadBatch(rng, attackers, benchBatchSize)
	out := make([]detect.Detection, 0, benchBatchSize)
	now := sim.Time(0)
	for i := 0; i < 100; i++ { // warm every slab, flag what will flag
		now += 500 * time.Microsecond
		out = e.Observe(now, batch, out[:0])
	}
	var packets uint64
	deadline := time.Now().Add(dur)
	start := time.Now()
	for time.Now().Before(deadline) {
		now += 500 * time.Microsecond
		out = e.Observe(now, batch, out[:0])
		packets += benchBatchSize
	}
	return float64(packets) / time.Since(start).Seconds()
}

// detectAllocsPerOp mirrors classifyAllocsPerOp over the observation
// workload.
func detectAllocsPerOp(e *detect.Engine, attackers int) float64 {
	rng := rand.New(rand.NewSource(99))
	batch := detect.WorkloadBatch(rng, attackers, benchBatchSize)
	out := make([]detect.Detection, 0, benchBatchSize)
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		now += 500 * time.Microsecond
		out = e.Observe(now, batch, out[:0])
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	const runs = 1000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		now += 500 * time.Microsecond
		out = e.Observe(now, batch, out[:0])
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}

func detectSweep(spec detectSweepSpec, dur time.Duration) []detectResult {
	var out []detectResult
	for _, g := range spec.geoms {
		for _, att := range spec.attackers {
			// A fresh engine per cell: attacker count shapes the summary
			// churn, which is part of what the cell measures.
			e := detect.WorkloadEngine(g.width, g.depth, spec.topk)
			out = append(out, detectResult{
				Width:       g.width,
				Depth:       g.depth,
				TopK:        spec.topk,
				Attackers:   att,
				PPS:         measureDetect(e, att, dur),
				AllocsPerOp: detectAllocsPerOp(detect.WorkloadEngine(g.width, g.depth, spec.topk), att),
			})
		}
	}
	return out
}

// detectRegressionFailures gates the detection sweep exactly as the
// wildcard gate does: one geometric-mean throughput floor across all
// matched cells, normalized by the main sweep's machine-speed ratio,
// plus the exact steady-state allocation gate per cell.
func detectRegressionFailures(baseline, measured []detectResult, tol, norm float64) (fails []string, matched int) {
	type dkey struct{ width, depth, topk, attackers int }
	base := make(map[dkey]detectResult, len(baseline))
	for _, c := range baseline {
		base[dkey{c.Width, c.Depth, c.TopK, c.Attackers}] = c
	}
	var logSum float64
	for _, m := range measured {
		b, ok := base[dkey{m.Width, m.Depth, m.TopK, m.Attackers}]
		if !ok || b.PPS <= 0 {
			continue
		}
		matched++
		logSum += math.Log(m.PPS / b.PPS)
		if m.AllocsPerOp > b.AllocsPerOp && m.AllocsPerOp >= 1 {
			fails = append(fails, fmt.Sprintf(
				"detect allocs regression: width=%d depth=%d attackers=%d: %.2f allocs/op (baseline %.2f)",
				m.Width, m.Depth, m.Attackers, m.AllocsPerOp, b.AllocsPerOp))
		}
	}
	if matched == 0 {
		return []string{"no measured detect cell matches the baseline (stale trend file?)"}, 0
	}
	ratio := math.Exp(logSum/float64(matched)) / norm
	if ratio < 1-tol {
		fails = append(fails, fmt.Sprintf(
			"detect throughput regression: geomean %.1f%% of baseline (floor %.0f%%)",
			ratio*100, (1-tol)*100))
	}
	return fails, matched
}

// allocRegressionFailures gates the collateral-allocation contrast.
// The simulator is deterministic, so two gates apply: the in-run
// property (the allocator must beat the fixed policy on collateral at
// equal-or-better attack suppression — the reason internal/alloc
// exists), and byte-exact equality against the committed baseline,
// which catches unintended behavior drift anywhere in the
// detect→alloc→dataplane chain. Intentional behavior changes
// regenerate the trend file with -json.
func allocRegressionFailures(baseline, measured []experiments.AllocCell) (fails []string, matched int) {
	cells := make(map[string]experiments.AllocCell, len(measured))
	for _, m := range measured {
		cells[m.Policy] = m
	}
	fixed, okF := cells["fixed24"]
	alloc, okA := cells["alloc"]
	if !okF || !okA {
		return []string{"alloc sweep missing a policy cell"}, 0
	}
	if fixed.Aggregations == 0 || alloc.Aggregations == 0 {
		fails = append(fails, fmt.Sprintf(
			"alloc workload no longer forces aggregation (fixed=%d alloc=%d)",
			fixed.Aggregations, alloc.Aggregations))
	}
	if alloc.LegitBytes <= fixed.LegitBytes {
		fails = append(fails, fmt.Sprintf(
			"allocator collateral win lost: %d legit B delivered vs fixed %d",
			alloc.LegitBytes, fixed.LegitBytes))
	}
	if alloc.AttackBytes > fixed.AttackBytes {
		fails = append(fails, fmt.Sprintf(
			"allocator attack suppression regressed: %d attack B delivered vs fixed %d",
			alloc.AttackBytes, fixed.AttackBytes))
	}
	if alloc.CollateralAddrs >= fixed.CollateralAddrs {
		fails = append(fails, fmt.Sprintf(
			"allocator covered-addr collateral %d not below fixed %d",
			alloc.CollateralAddrs, fixed.CollateralAddrs))
	}
	base := make(map[string]experiments.AllocCell, len(baseline))
	for _, b := range baseline {
		base[b.Policy] = b
	}
	for _, m := range measured {
		b, ok := base[m.Policy]
		if !ok {
			continue
		}
		matched++
		if m != b {
			fails = append(fails, fmt.Sprintf(
				"alloc cell %q drifted from the deterministic baseline: measured %+v, baseline %+v",
				m.Policy, m, b))
		}
	}
	if matched == 0 {
		return []string{"no measured alloc cell matches the baseline (stale trend file?)"}, 0
	}
	return fails, matched
}

// parseGoroutines parses the -goroutines flag ("1,2,4,8").
func parseGoroutines(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad goroutine count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty goroutine list")
	}
	return out, nil
}

type cellKey struct {
	shards, filters int
	mix             string
	goroutines      int
}

// regressionFailures compares a fresh sweep against the committed
// baseline. Per-cell throughput on a shared runner is noisy, so the
// gate is the geometric-mean ratio (measured/baseline) per goroutine
// count: a real read-path regression depresses every cell at once,
// while one noisy cell cannot fail the build. Allocations are exact
// and gated per cell.
//
// With normalize set, every per-goroutine-count ratio is divided by
// min(1, global geomean ratio): a runner uniformly slower than the
// machine that produced the baseline is judged relative to its own
// overall speed, while a faster runner is never normalized *down* —
// otherwise healthy multi-core scaling against a single-core baseline
// would depress the 1-goroutine group below the floor and fail on
// improvement. The gate still catches the regression class the
// lock-free read path exists to prevent: groups collapsing relative
// to the machine's overall speed (e.g. a reintroduced lock convoying
// some goroutine counts). CI uses normalized mode because its runners
// differ from the baseline machine; same-machine runs should use the
// absolute gate.
// The returned norm is the machine-speed normalizer actually applied
// (1 when normalize is false), so downstream gates (the wildcard
// sweep) judge against the same machine-speed reference.
func regressionFailures(baseline, measured []dataplaneResult, tol float64, normalize bool) (fails []string, matched int, norm float64) {
	base := make(map[cellKey]dataplaneResult, len(baseline))
	for _, c := range baseline {
		base[cellKey{c.Shards, c.Filters, c.Mix, c.Goroutines}] = c
	}
	logRatioSum := map[int]float64{}
	cells := map[int]int{}
	type allocKey struct {
		shards, filters int
		mix             string
	}
	allocSeen := map[allocKey]bool{} // allocs are per (shards,filters,mix); report once
	for _, m := range measured {
		b, ok := base[cellKey{m.Shards, m.Filters, m.Mix, m.Goroutines}]
		if !ok || b.PPS <= 0 {
			continue
		}
		matched++
		logRatioSum[m.Goroutines] += math.Log(m.PPS / b.PPS)
		cells[m.Goroutines]++
		ak := allocKey{m.Shards, m.Filters, m.Mix}
		if m.AllocsPerOp > b.AllocsPerOp && m.AllocsPerOp >= 1 && !allocSeen[ak] {
			allocSeen[ak] = true
			fails = append(fails, fmt.Sprintf(
				"allocs regression: shards=%d filters=%d mix=%s: %.2f allocs/op (baseline %.2f)",
				m.Shards, m.Filters, m.Mix, m.AllocsPerOp, b.AllocsPerOp))
		}
	}
	if matched == 0 {
		// A disjoint sweep would otherwise gate nothing and "pass".
		return []string{"no measured cell matches the baseline (stale trend file, or -goroutines differs from the baseline sweep?)"}, 0, 1
	}
	norm = 1.0
	if normalize {
		var logSum float64
		n := 0
		for g, s := range logRatioSum {
			logSum += s
			n += cells[g]
		}
		if n > 0 {
			norm = math.Min(1, math.Exp(logSum/float64(n)))
		}
	}
	var gors []int
	for g := range cells {
		gors = append(gors, g)
	}
	sort.Ints(gors)
	for _, g := range gors {
		ratio := math.Exp(logRatioSum[g]/float64(cells[g])) / norm
		if ratio < 1-tol {
			kind := "baseline"
			if normalize {
				kind = "baseline (machine-normalized)"
			}
			fails = append(fails, fmt.Sprintf(
				"throughput regression at %d goroutine(s): geomean %.1f%% of %s (floor %.0f%%)",
				g, ratio*100, kind, (1-tol)*100))
		}
	}
	return fails, matched, norm
}

// wildcardRegressionFailures gates the wildcard/prefix sweep: one
// geometric-mean throughput floor across all cells (the same
// noise-vs-collapse argument as the main sweep), plus the exact
// steady-state allocation gate per cell. norm is the machine-speed
// normalizer carried over from the main sweep (1 when unnormalized);
// using the main sweep's ratio keeps a runner that is uniformly slower
// from failing while still catching the wildcard path collapsing
// relative to the rest of the engine.
func wildcardRegressionFailures(baseline, measured []wildcardResult, tol, norm float64) (fails []string, matched int) {
	type wkey struct {
		shards, pairs, nonExact int
		wildFrac                float64
	}
	base := make(map[wkey]wildcardResult, len(baseline))
	for _, c := range baseline {
		base[wkey{c.Shards, c.Pairs, c.NonExact, c.WildFrac}] = c
	}
	var logSum float64
	for _, m := range measured {
		b, ok := base[wkey{m.Shards, m.Pairs, m.NonExact, m.WildFrac}]
		if !ok || b.PPS <= 0 {
			continue
		}
		matched++
		logSum += math.Log(m.PPS / b.PPS)
		if m.AllocsPerOp > b.AllocsPerOp && m.AllocsPerOp >= 1 {
			fails = append(fails, fmt.Sprintf(
				"wildcard allocs regression: nonexact=%d wildfrac=%.1f: %.2f allocs/op (baseline %.2f)",
				m.NonExact, m.WildFrac, m.AllocsPerOp, b.AllocsPerOp))
		}
	}
	if matched == 0 {
		return []string{"no measured wildcard cell matches the baseline (stale trend file?)"}, 0
	}
	ratio := math.Exp(logSum/float64(matched)) / norm
	if ratio < 1-tol {
		fails = append(fails, fmt.Sprintf(
			"wildcard throughput regression: geomean %.1f%% of baseline (floor %.0f%%)",
			ratio*100, (1-tol)*100))
	}
	return fails, matched
}

func runRegression(path string, spec sweepSpec, wspec wildcardSweepSpec, dur time.Duration, tol, instrTol float64, normalize bool, metricsJSON string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aitf-bench: -regress: %v\n", err)
		return 2
	}
	var baseline benchOutput
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "aitf-bench: -regress: decode %s: %v\n", path, err)
		return 2
	}
	if len(baseline.Dataplane) == 0 {
		fmt.Fprintf(os.Stderr, "aitf-bench: -regress: %s has no dataplane cells\n", path)
		return 2
	}
	if len(baseline.DataplaneWildcard) == 0 {
		fmt.Fprintf(os.Stderr, "aitf-bench: -regress: %s has no wildcard cells\n", path)
		return 2
	}
	if len(baseline.Detect) == 0 {
		fmt.Fprintf(os.Stderr, "aitf-bench: -regress: %s has no detect cells\n", path)
		return 2
	}
	if len(baseline.DataplaneInstrumented) == 0 {
		fmt.Fprintf(os.Stderr, "aitf-bench: -regress: %s has no instrumented cells\n", path)
		return 2
	}
	if len(baseline.Alloc) == 0 {
		fmt.Fprintf(os.Stderr, "aitf-bench: -regress: %s has no alloc cells\n", path)
		return 2
	}
	fmt.Fprintf(os.Stderr, "aitf-bench: regression sweep (%v per cell) against %s...\n", dur, path)
	measured := dataplaneSweep(spec, dur)
	fails, matched, norm := regressionFailures(baseline.Dataplane, measured, tol, normalize)
	wmeasured := wildcardSweep(wspec, dur)
	wfails, wmatched := wildcardRegressionFailures(baseline.DataplaneWildcard, wmeasured, tol, norm)
	fails = append(fails, wfails...)
	dmeasured := detectSweep(defaultDetectSweep(), dur)
	dfails, dmatched := detectRegressionFailures(baseline.Detect, dmeasured, tol, norm)
	fails = append(fails, dfails...)
	ameasured := experiments.AllocSweep()
	afails, amatched := allocRegressionFailures(baseline.Alloc, ameasured)
	fails = append(fails, afails...)
	// The instrumentation gate is in-run (instrumented vs base twin on
	// this machine), so it needs no baseline matching — the baseline
	// presence check above only keeps the trend file's section alive.
	imeasured, ireg := instrumentedSweep(defaultInstrumentedSweep(spec.goroutines), dur)
	fails = append(fails, instrumentedOverheadFailures(imeasured, instrTol)...)
	if metricsJSON != "" {
		if err := writeMetricsJSON(metricsJSON, ireg); err != nil {
			fmt.Fprintf(os.Stderr, "aitf-bench: -metrics-json: %v\n", err)
			return 2
		}
	}
	if len(fails) == 0 {
		fmt.Fprintf(os.Stderr, "aitf-bench: no perf regression (%d+%d+%d+%d of %d+%d+%d+%d cells compared, %d instrumented cells gated)\n",
			matched, wmatched, dmatched, amatched,
			len(measured), len(wmeasured), len(dmeasured), len(ameasured), len(imeasured))
		return 0
	}
	for _, f := range fails {
		fmt.Fprintf(os.Stderr, "aitf-bench: FAIL: %s\n", f)
	}
	return 1
}

// writeMetricsJSON dumps an instrumented engine's registry in the same
// JSON snapshot format the aitfd admin endpoint serves at
// /metrics.json ("-" writes to stdout).
func writeMetricsJSON(path string, reg *obs.Registry) error {
	if reg == nil {
		return fmt.Errorf("no instrumented registry (sweep did not run)")
	}
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	jsonOut := flag.Bool("json", false, "also write machine-readable results to -o")
	outPath := flag.String("o", "BENCH_dataplane.json", "output path for -json / baseline for -regress")
	sweepDur := flag.Duration("sweep", 100*time.Millisecond, "measurement window per data-plane sweep cell")
	goroutinesFlag := flag.String("goroutines", "1,2,4,8", "comma-separated goroutine counts for the sweep")
	regress := flag.Bool("regress", false, "run the sweep and fail on regression vs the -o baseline (skips experiments)")
	regressTol := flag.Float64("regress-tol", 0.30, "allowed fractional throughput drop before -regress fails")
	instrTol := flag.Float64("instr-tol", 0.05, "allowed fractional throughput cost of instrumentation before -regress fails")
	regressNorm := flag.Bool("regress-normalize", false, "normalize -regress by the global geomean ratio (for runners unlike the baseline machine)")
	metricsJSON := flag.String("metrics-json", "", "write the instrumented sweep's live registry as a JSON metrics snapshot here (\"-\" for stdout)")
	flag.Parse()

	gors, err := parseGoroutines(*goroutinesFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aitf-bench: -goroutines: %v\n", err)
		os.Exit(2)
	}

	if *regress {
		os.Exit(runRegression(*outPath, defaultSweep(gors), defaultWildcardSweep(), *sweepDur, *regressTol, *instrTol, *regressNorm, *metricsJSON))
	}

	drivers, ids := experiments.All()
	want := flag.Args()
	if len(want) == 0 {
		want = ids
	}
	var results []experiments.Result
	for _, id := range want {
		d, ok := drivers[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "aitf-bench: unknown experiment %q (have %v)\n", id, ids)
			os.Exit(2)
		}
		res := d()
		res.Render(os.Stdout)
		results = append(results, res)
	}

	if !*jsonOut {
		// -metrics-json without -json still runs the (small)
		// instrumented sweep so the snapshot reflects live load.
		if *metricsJSON != "" {
			_, reg := instrumentedSweep(defaultInstrumentedSweep(gors), *sweepDur)
			if err := writeMetricsJSON(*metricsJSON, reg); err != nil {
				fmt.Fprintf(os.Stderr, "aitf-bench: -metrics-json: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	fmt.Fprintf(os.Stderr, "aitf-bench: running data-plane throughput sweep (%v per cell)...\n", *sweepDur)
	imeasured, ireg := instrumentedSweep(defaultInstrumentedSweep(gors), *sweepDur)
	out := benchOutput{
		GeneratedAt:           time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:            runtime.GOMAXPROCS(0),
		Experiments:           results,
		Dataplane:             dataplaneSweep(defaultSweep(gors), *sweepDur),
		DataplaneWildcard:     wildcardSweep(defaultWildcardSweep(), *sweepDur),
		DataplaneInstrumented: imeasured,
		Detect:                detectSweep(defaultDetectSweep(), *sweepDur),
		Alloc:                 experiments.AllocSweep(),
	}
	if *metricsJSON != "" {
		if err := writeMetricsJSON(*metricsJSON, ireg); err != nil {
			fmt.Fprintf(os.Stderr, "aitf-bench: -metrics-json: %v\n", err)
			os.Exit(1)
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "aitf-bench: marshal: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "aitf-bench: write %s: %v\n", *outPath, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "aitf-bench: wrote %s\n", *outPath)
}
